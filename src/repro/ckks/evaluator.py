"""Homomorphic evaluation operations for RNS-CKKS.

Implements the operation set of Table 2 on real ciphertexts: element-wise
addition/subtraction/negation (ciphertext-ciphertext and ciphertext-plaintext),
multiplication, relinearization, slot rotation via Galois automorphisms,
rescaling, and modulus switching.  Every operation enforces the same
preconditions SEAL enforces and raises the typed errors of
:mod:`repro.errors` when they are violated — the conditions the EVA compiler
guarantees can never occur in a validated program.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import (
    LevelMismatchError,
    ModulusExhaustedError,
    ParameterError,
    PolynomialCountError,
    ScaleMismatchError,
)
from .ciphertext import Ciphertext, Plaintext
from .context import CkksContext
from .keys import GaloisKeys, KeySwitchingKey, RelinearizationKey
from .ntt import galois_ntt_permutation
from .rns import RnsBasis, RnsPolynomial

#: Relative tolerance when comparing scales of additive operands.
_SCALE_RTOL = 1e-6

#: How many digit decompositions the hoisting cache retains (keyed by the
#: identity of the decomposed polynomial; entries hold a strong reference so
#: ``id()`` cannot be recycled while cached).
_HOIST_CACHE_CAPACITY = 4


class Evaluator:
    """Evaluates homomorphic operations on CKKS ciphertexts.

    Key switching runs in the NTT (evaluation) domain by default: switching
    keys are transformed once per (key, basis) and cached, each decomposition
    digit is transformed once and multiply-accumulated pointwise, and Galois
    automorphisms become index permutations of the cached digit transforms —
    so a group of rotations of the same ciphertext shares one decomposition
    (SEAL-style hoisting).  Pass ``fast_keyswitch=False`` to run the original
    coefficient-domain path, which is kept as the property-test oracle.
    """

    def __init__(
        self,
        context: CkksContext,
        relin_key: Optional[RelinearizationKey] = None,
        galois_keys: Optional[GaloisKeys] = None,
        fast_keyswitch: bool = True,
    ) -> None:
        self.context = context
        self.relin_key = relin_key
        self.galois_keys = galois_keys
        self.fast_keyswitch = bool(fast_keyswitch)
        self._hoist_cache: "OrderedDict[int, Tuple[RnsPolynomial, int, np.ndarray]]" = (
            OrderedDict()
        )

    # -- checks ---------------------------------------------------------------------
    @staticmethod
    def _check_same_level(a: Ciphertext, b: Ciphertext) -> None:
        if a.level != b.level:
            raise LevelMismatchError(
                f"ciphertexts are at different levels ({a.level} vs {b.level})"
            )

    @staticmethod
    def _check_same_scale(a_scale: float, b_scale: float) -> None:
        if abs(a_scale - b_scale) > _SCALE_RTOL * max(abs(a_scale), abs(b_scale), 1.0):
            raise ScaleMismatchError(
                f"operand scales differ ({a_scale:g} vs {b_scale:g})"
            )

    def _check_plain(self, a: Ciphertext, p: Plaintext) -> None:
        if a.level != p.level:
            raise LevelMismatchError(
                f"plaintext level {p.level} does not match ciphertext level {a.level}"
            )

    # -- linear operations -------------------------------------------------------------
    def negate(self, a: Ciphertext) -> Ciphertext:
        return Ciphertext([p.negate() for p in a.polys], a.scale, a.level)

    def add(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self._check_same_level(a, b)
        self._check_same_scale(a.scale, b.scale)
        size = max(a.size, b.size)
        polys = []
        for i in range(size):
            if i < a.size and i < b.size:
                polys.append(a.polys[i].add(b.polys[i]))
            elif i < a.size:
                polys.append(a.polys[i].copy())
            else:
                polys.append(b.polys[i].copy())
        return Ciphertext(polys, max(a.scale, b.scale), a.level)

    def sub(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        return self.add(a, self.negate(b))

    def add_plain(self, a: Ciphertext, p: Plaintext) -> Ciphertext:
        self._check_plain(a, p)
        self._check_same_scale(a.scale, p.scale)
        polys = [a.polys[0].add(p.poly)] + [poly.copy() for poly in a.polys[1:]]
        return Ciphertext(polys, a.scale, a.level)

    def sub_plain(self, a: Ciphertext, p: Plaintext, reverse: bool = False) -> Ciphertext:
        self._check_plain(a, p)
        self._check_same_scale(a.scale, p.scale)
        if not reverse:
            polys = [a.polys[0].sub(p.poly)] + [poly.copy() for poly in a.polys[1:]]
            return Ciphertext(polys, a.scale, a.level)
        negated = self.negate(a)
        polys = [negated.polys[0].add(p.poly)] + [poly.copy() for poly in negated.polys[1:]]
        return Ciphertext(polys, a.scale, a.level)

    # -- multiplication -------------------------------------------------------------------
    def multiply(self, a: Ciphertext, b: Ciphertext) -> Ciphertext:
        self._check_same_level(a, b)
        for operand in (a, b):
            if operand.size != 2:
                raise PolynomialCountError(
                    f"multiplication operand has {operand.size} polynomials; relinearize first"
                )
        c0 = a.polys[0].multiply(b.polys[0])
        c1 = a.polys[0].multiply(b.polys[1]).add(a.polys[1].multiply(b.polys[0]))
        c2 = a.polys[1].multiply(b.polys[1])
        return Ciphertext([c0, c1, c2], a.scale * b.scale, a.level)

    def multiply_plain(self, a: Ciphertext, p: Plaintext) -> Ciphertext:
        self._check_plain(a, p)
        polys = [poly.multiply(p.poly) for poly in a.polys]
        return Ciphertext(polys, a.scale * p.scale, a.level)

    def square(self, a: Ciphertext) -> Ciphertext:
        return self.multiply(a, a)

    # -- key switching ----------------------------------------------------------------------
    def _key_switch(
        self, poly: RnsPolynomial, switching_key: KeySwitchingKey, level: int
    ) -> Tuple[RnsPolynomial, RnsPolynomial]:
        """Switch ``poly`` (held under some key ``s'``) to the secret key ``s``.

        Returns the pair to be added to ``(c0, c1)``, already scaled down by
        the special prime and expressed in the data basis of ``level``.
        """
        if not self.fast_keyswitch:
            return self._key_switch_reference(poly, switching_key, level)
        digit_ntts = self._digit_ntts(poly, level, cache=False)
        return self._key_switch_decomposed(digit_ntts, switching_key, level)

    def _key_switch_reference(
        self, poly: RnsPolynomial, switching_key: KeySwitchingKey, level: int
    ) -> Tuple[RnsPolynomial, RnsPolynomial]:
        """Coefficient-domain key switch (property-test oracle for the fast path)."""
        context = self.context
        data_basis = poly.basis
        key_basis = context.key_basis(level)
        acc0 = RnsPolynomial.zero(key_basis)
        acc1 = RnsPolynomial.zero(key_basis)
        for row, prime in enumerate(data_basis.primes):
            pair = switching_key.pairs.get(prime)
            if pair is None:
                raise ParameterError(f"switching key is missing the digit for prime {prime}")
            digit = RnsPolynomial.from_int64_coefficients(key_basis, poly.residues[row])
            b_j = context.restrict(pair[0], key_basis)
            a_j = context.restrict(pair[1], key_basis)
            acc0 = acc0.add(digit.multiply(b_j))
            acc1 = acc1.add(digit.multiply(a_j))
        return acc0.divide_and_round_last(), acc1.divide_and_round_last()

    def _digit_ntts(self, poly: RnsPolynomial, level: int, cache: bool) -> np.ndarray:
        """Forward NTT of every decomposition digit of ``poly`` over the key basis.

        Returns an ``(L, K, N)`` array: row ``j`` holds the NTT (one row per
        key-basis prime) of ``poly``'s ``j``-th data residue lifted to the key
        basis.  With ``cache=True`` the result is memoized by the identity of
        ``poly`` so a group of rotations of one ciphertext decomposes once.
        """
        if cache:
            entry = self._hoist_cache.get(id(poly))
            if entry is not None and entry[0] is poly and entry[1] == level:
                self._hoist_cache.move_to_end(id(poly))
                return entry[2]
        key_basis = self.context.key_basis(level)
        n = key_basis.poly_modulus_degree
        rows = len(poly.basis)
        digit_ntts = np.empty((rows, len(key_basis), n), dtype=np.int64)
        primes = key_basis.primes_column
        for j in range(rows):
            digits = poly.residues[j][np.newaxis, :] % primes
            for k, ntt in enumerate(key_basis.ntt):
                digit_ntts[j, k] = ntt.forward(digits[k])
        if cache:
            self._hoist_cache[id(poly)] = (poly, level, digit_ntts)
            while len(self._hoist_cache) > _HOIST_CACHE_CAPACITY:
                self._hoist_cache.popitem(last=False)
        return digit_ntts

    def _key_evaluation_form(
        self, switching_key: KeySwitchingKey, key_basis: RnsBasis, data_primes: Tuple[int, ...]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """NTT forms of the switching-key pairs, cached on the key object.

        Returns ``(B, A)`` with shape ``(L, K, N)``: ``B[j, k]`` is the forward
        NTT modulo key prime ``k`` of ``b_j`` (and likewise ``A`` for ``a_j``)
        for data prime ``q_j``.  Keys are static per session, so this is
        computed once per (key, basis) instead of twice per key switch.
        """
        forms: Dict[Tuple[int, ...], Tuple[np.ndarray, np.ndarray]]
        forms = getattr(switching_key, "_evaluation_forms", None)
        if forms is None:
            forms = {}
            switching_key._evaluation_forms = forms
        cache_key = tuple(key_basis.primes)
        cached = forms.get(cache_key)
        if cached is not None:
            return cached
        n = key_basis.poly_modulus_degree
        b_ntt = np.empty((len(data_primes), len(key_basis), n), dtype=np.int64)
        a_ntt = np.empty_like(b_ntt)
        for j, q_j in enumerate(data_primes):
            pair = switching_key.pairs.get(q_j)
            if pair is None:
                raise ParameterError(f"switching key is missing the digit for prime {q_j}")
            b_j = self.context.restrict(pair[0], key_basis)
            a_j = self.context.restrict(pair[1], key_basis)
            for k, ntt in enumerate(key_basis.ntt):
                b_ntt[j, k] = ntt.forward(b_j.residues[k])
                a_ntt[j, k] = ntt.forward(a_j.residues[k])
        forms[cache_key] = (b_ntt, a_ntt)
        return b_ntt, a_ntt

    def _key_switch_decomposed(
        self,
        digit_ntts: np.ndarray,
        switching_key: KeySwitchingKey,
        level: int,
        permutation: Optional[np.ndarray] = None,
    ) -> Tuple[RnsPolynomial, RnsPolynomial]:
        """Key switch from pre-transformed digits, entirely in the NTT domain.

        ``permutation`` (a Galois NTT permutation) is applied to the digits on
        the fly, which is how hoisted rotations reuse one decomposition.
        """
        context = self.context
        key_basis = context.key_basis(level)
        data_primes = tuple(context.data_basis(level).primes)
        b_ntt, a_ntt = self._key_evaluation_form(switching_key, key_basis, data_primes)
        primes = key_basis.primes_column
        shape = (len(key_basis), key_basis.poly_modulus_degree)
        acc0 = np.zeros(shape, dtype=np.int64)
        acc1 = np.zeros(shape, dtype=np.int64)
        for j in range(digit_ntts.shape[0]):
            digit = digit_ntts[j] if permutation is None else digit_ntts[j][:, permutation]
            acc0 += digit * b_ntt[j] % primes
            np.subtract(acc0, primes, out=acc0, where=acc0 >= primes)
            acc1 += digit * a_ntt[j] % primes
            np.subtract(acc1, primes, out=acc1, where=acc1 >= primes)
        res0 = np.empty(shape, dtype=np.int64)
        res1 = np.empty(shape, dtype=np.int64)
        for k, ntt in enumerate(key_basis.ntt):
            res0[k] = ntt.inverse(acc0[k])
            res1[k] = ntt.inverse(acc1[k])
        poly0 = RnsPolynomial(key_basis, res0)
        poly1 = RnsPolynomial(key_basis, res1)
        return poly0.divide_and_round_last(), poly1.divide_and_round_last()

    def relinearize(self, a: Ciphertext) -> Ciphertext:
        """Reduce a three-polynomial ciphertext back to two polynomials."""
        if self.relin_key is None:
            raise ParameterError("no relinearization key available")
        if a.size == 2:
            return a.copy()
        if a.size != 3:
            raise PolynomialCountError(
                f"relinearization supports ciphertexts of size 3, got {a.size}"
            )
        ks0, ks1 = self._key_switch(a.polys[2], self.relin_key.key, a.level)
        return Ciphertext(
            [a.polys[0].add(ks0), a.polys[1].add(ks1)], a.scale, a.level
        )

    def rotate(self, a: Ciphertext, steps: int) -> Ciphertext:
        """Rotate the slots left by ``steps`` (negative values rotate right).

        On the fast path the decomposition of ``c1`` is hoisted: it is
        transformed once (and cached by ciphertext identity), and each rotation
        applies its Galois element as an index permutation of the cached digit
        NTTs — rotating the same ciphertext by k different steps costs one
        decomposition instead of k.
        """
        if self.galois_keys is None:
            raise ParameterError("no Galois keys available")
        steps = int(steps) % self.context.slots
        if steps == 0:
            return a.copy()
        if a.size != 2:
            raise PolynomialCountError("rotation requires a relinearized ciphertext")
        element = self.context.galois_element_for_step(steps)
        switching_key = self.galois_keys.key_for(element)
        if not self.fast_keyswitch:
            return self._rotate_reference(a, element, switching_key)
        c0 = a.polys[0].automorphism(element)
        digit_ntts = self._digit_ntts(a.polys[1], a.level, cache=True)
        permutation = galois_ntt_permutation(self.context.poly_modulus_degree, element)
        ks0, ks1 = self._key_switch_decomposed(
            digit_ntts, switching_key, a.level, permutation=permutation
        )
        return Ciphertext([c0.add(ks0), ks1], a.scale, a.level)

    def _rotate_reference(
        self, a: Ciphertext, element: int, switching_key: KeySwitchingKey
    ) -> Ciphertext:
        """Rotate via coefficient-domain automorphism + reference key switch."""
        c0 = a.polys[0].automorphism(element)
        c1 = a.polys[1].automorphism(element)
        ks0, ks1 = self._key_switch_reference(c1, switching_key, a.level)
        return Ciphertext([c0.add(ks0), ks1], a.scale, a.level)

    # -- modulus chain -----------------------------------------------------------------------
    def rescale_to_next(self, a: Ciphertext) -> Ciphertext:
        """Divide the ciphertext (and its scale) by the next prime in the chain."""
        if a.level >= self.context.max_level - 1:
            raise ModulusExhaustedError("cannot rescale: no prime left to divide away")
        prime = a.basis.primes[-1]
        polys = [p.divide_and_round_last() for p in a.polys]
        return Ciphertext(polys, a.scale / prime, a.level + 1)

    def mod_switch_to_next(self, a: Ciphertext) -> Ciphertext:
        """Drop the next prime in the chain without changing the scale."""
        if a.level >= self.context.max_level - 1:
            raise ModulusExhaustedError("cannot switch modulus: no prime left to drop")
        polys = [p.drop_last() for p in a.polys]
        return Ciphertext(polys, a.scale, a.level + 1)
