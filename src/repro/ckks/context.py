"""CKKS encryption context: parameters, primes, bases, and the encoder.

The context plays the role of SEAL's ``SEALContext``: it validates the
encryption parameters (including the homomorphic-encryption security standard
bound used by the compiler's parameter-selection pass), generates the
NTT-friendly primes for the coefficient modulus, and precomputes the RNS bases
used at every level of the modulus chain.

Prime ordering
--------------
The compiler emits coefficient-modulus *bit sizes* in consumption order with
the key-switching special prime last.  Internally, ciphertext bases store the
*last-consumed* prime first, so that RESCALE and MOD_SWITCH always operate on
the final residue row (the cheapest representation to drop).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from ..core.analysis.parameters import SECURITY_MAX_COEFF_MODULUS_BITS, EncryptionParameters
from ..errors import ParameterError, SecurityError
from .encoder import CkksEncoder, get_encoder
from .numth import generate_ntt_primes
from .rns import RnsBasis, RnsPolynomial


class CkksContext:
    """Validated CKKS parameters plus the derived per-level RNS bases."""

    def __init__(
        self,
        poly_modulus_degree: int,
        coeff_modulus_bits: Sequence[int],
        security_level: int = 128,
        enforce_security: bool = True,
    ) -> None:
        if len(coeff_modulus_bits) < 2:
            raise ParameterError(
                "the coefficient modulus needs at least one data prime and the special prime"
            )
        self.poly_modulus_degree = int(poly_modulus_degree)
        self.coeff_modulus_bits = [int(b) for b in coeff_modulus_bits]
        self.security_level = int(security_level)

        if enforce_security:
            table = SECURITY_MAX_COEFF_MODULUS_BITS.get(self.security_level)
            if table is None:
                raise SecurityError(f"unsupported security level {security_level}")
            bound = table.get(self.poly_modulus_degree)
            if bound is None:
                raise SecurityError(
                    f"polynomial modulus degree {poly_modulus_degree} is not in the "
                    "security standard table"
                )
            if sum(self.coeff_modulus_bits) > bound:
                raise SecurityError(
                    f"total coefficient modulus of {sum(self.coeff_modulus_bits)} bits "
                    f"exceeds the {security_level}-bit security bound of {bound} bits "
                    f"for N={poly_modulus_degree}"
                )

        primes = generate_ntt_primes(self.coeff_modulus_bits, self.poly_modulus_degree)
        #: Primes in consumption order (the compiler's chain order), special last.
        self.consumable_primes: List[int] = primes[:-1]
        self.special_prime: int = primes[-1]
        self.encoder: CkksEncoder = get_encoder(self.poly_modulus_degree)

        self._data_bases: Dict[int, RnsBasis] = {}
        self._key_bases: Dict[int, RnsBasis] = {}

    # -- factory ------------------------------------------------------------------
    @classmethod
    def from_parameters(
        cls, parameters: EncryptionParameters, enforce_security: bool = True
    ) -> "CkksContext":
        """Build a context from the compiler's :class:`EncryptionParameters`."""
        return cls(
            parameters.poly_modulus_degree,
            parameters.coeff_modulus_bits,
            security_level=parameters.security_level,
            enforce_security=enforce_security,
        )

    # -- basic properties -----------------------------------------------------------
    @property
    def slots(self) -> int:
        return self.poly_modulus_degree // 2

    @property
    def max_level(self) -> int:
        """Number of consumable primes (levels 0 .. max_level-1 hold data)."""
        return len(self.consumable_primes)

    def prime_at_level(self, level: int) -> int:
        """The prime consumed by a RESCALE/MOD_SWITCH performed at ``level``."""
        if level < 0 or level >= self.max_level:
            raise ParameterError(f"level {level} out of range")
        return self.consumable_primes[level]

    # -- bases ------------------------------------------------------------------------
    def data_basis(self, level: int = 0) -> RnsBasis:
        """RNS basis of ciphertext data at the given level."""
        if level < 0 or level >= self.max_level:
            raise ParameterError(
                f"level {level} out of range (chain has {self.max_level} data primes)"
            )
        basis = self._data_bases.get(level)
        if basis is None:
            primes = list(reversed(self.consumable_primes))[: self.max_level - level]
            basis = RnsBasis(primes, self.poly_modulus_degree)
            self._data_bases[level] = basis
        return basis

    def key_basis(self, level: int = 0) -> RnsBasis:
        """RNS basis used during key switching at the given level (data + special)."""
        basis = self._key_bases.get(level)
        if basis is None:
            primes = self.data_basis(level).primes + [self.special_prime]
            basis = RnsBasis(primes, self.poly_modulus_degree)
            self._key_bases[level] = basis
        return basis

    def level_of(self, basis: RnsBasis) -> int:
        """Level of a ciphertext stored in the given data basis."""
        return self.max_level - len(basis.primes)

    def restrict(self, poly: RnsPolynomial, basis: RnsBasis) -> RnsPolynomial:
        """Restrict a polynomial to a basis whose primes are a subset of its own."""
        index_of = {prime: i for i, prime in enumerate(poly.basis.primes)}
        try:
            rows = [poly.residues[index_of[prime]] for prime in basis.primes]
        except KeyError as exc:
            raise ParameterError("target basis is not contained in the source basis") from exc
        return RnsPolynomial(basis, np.stack(rows))

    # -- rotations -----------------------------------------------------------------------
    def galois_element_for_step(self, step: int) -> int:
        """Galois element realizing a left rotation of the slots by ``step``."""
        step = int(step) % self.slots
        return pow(5, step, 2 * self.poly_modulus_degree)

    # -- reporting -------------------------------------------------------------------------
    def total_coeff_modulus_bits(self) -> float:
        """Actual ``log2 Q`` including the special prime."""
        total = math.prod(self.consumable_primes) * self.special_prime
        return math.log2(total)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CkksContext N={self.poly_modulus_degree} "
            f"primes={self.coeff_modulus_bits} security={self.security_level}>"
        )
