"""Exception hierarchy for the EVA reproduction.

Every error raised by this package derives from :class:`EvaError`, so callers
can catch a single base class.  The hierarchy mirrors the failure modes the
paper discusses: compile-time validation failures (Constraints 1-4 of
Section 4.2), encryption-parameter/security failures, and runtime failures of
the homomorphic backend (the class of exceptions SEAL would throw and that the
EVA compiler is designed to make impossible).
"""

from __future__ import annotations


class EvaError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class CompilationError(EvaError):
    """An error occurring while compiling an EVA program."""


class ValidationError(CompilationError):
    """The compiled program violates one of the RNS-CKKS constraints.

    The validator checks Constraints 1-4 of the paper (matching coefficient
    moduli for binary ops, matching scales for additive ops, two-polynomial
    operands for multiplication, and the maximum rescale value).
    """


class UnsupportedOperationError(CompilationError):
    """An opcode is not allowed in the current position (e.g. RESCALE in input)."""


class ParameterError(EvaError):
    """Invalid or inconsistent encryption parameters."""


class SecurityError(ParameterError):
    """The requested parameters do not reach the requested security level."""


class SerializationError(EvaError):
    """Failure while serializing or deserializing an EVA program."""


class ExecutionError(EvaError):
    """A runtime failure while executing an EVA program on a backend."""


class ScaleMismatchError(ExecutionError):
    """Operands of an additive operation have different scales (Constraint 2)."""


class LevelMismatchError(ExecutionError):
    """Operands of a binary operation have different coefficient moduli (Constraint 1)."""


class PolynomialCountError(ExecutionError):
    """An operand of a multiplication has more than two polynomials (Constraint 3)."""


class ModulusExhaustedError(ExecutionError):
    """A rescale or modulus switch was attempted with no moduli left in the chain."""


class TransparentCiphertextError(ExecutionError):
    """An operation produced a ciphertext that trivially reveals its plaintext."""


class EncodingError(EvaError):
    """Failure while encoding or decoding a CKKS plaintext."""


class NoiseBudgetExhaustedError(ExecutionError):
    """The accumulated approximation error exceeds the message magnitude."""


class ServingError(EvaError):
    """A failure in the encrypted-computation serving layer."""


class QueueFullError(ServingError):
    """The serving job queue is at capacity and the submit deadline expired."""


class QuotaExceededError(ServingError):
    """A client exceeded its fairness quota (rate or in-flight cap).

    The serving layer's 429: the request was rejected by admission control,
    not by a failure — the client should back off and retry.  ``retry_after``
    (seconds, possibly 0.0) is the admission layer's estimate of when a retry
    could succeed; it travels on the wire so remote clients can honor it.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = max(float(retry_after), 0.0)


class DeadlineInfeasibleError(ServingError):
    """A request's deadline cannot be met and it was rejected at admission.

    The SLO-aware counterpart of :class:`QuotaExceededError`: the engine
    modeled the request's queue wait plus execution time (from observed
    latency percentiles and the backend cost model) and found the total
    already exceeds the request's ``deadline_ms`` — executing it would only
    burn capacity on a guaranteed miss.  ``retry_after`` (seconds) estimates
    when the queue will have drained enough for a retry to be feasible; it
    travels on the wire like the quota 429's hint.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = max(float(retry_after), 0.0)


class TransportError(ServingError):
    """A network-level failure talking to a serving endpoint.

    Distinct from application-level :class:`ServingError` replies so routing
    layers know the difference between "the server answered with an error"
    (do not retry elsewhere) and "the connection died" (fail over to another
    shard).
    """


class UnknownProgramError(ServingError):
    """A request referenced a program name the server has not registered."""
