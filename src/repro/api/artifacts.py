"""The compiled-program artifact shared by clients and servers.

:class:`CompiledProgram` is the first of the three public artifacts of the
client/server API (the others are :class:`~repro.api.client.ClientKit` and
:class:`~repro.api.runtime.ServerRuntime`).  It wraps a
:class:`~repro.core.compiler.CompilationResult` together with the stable
content signature (:func:`repro.core.compiler.program_signature`) that keys
every cache in the serving layer, and it can be saved to and loaded from disk
through the existing serialization layer, so a server can host a program its
operator compiled once, offline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..core.analysis import select_parameters, select_rotation_steps
from ..core.analysis.parameters import EncryptionParameters
from ..core.compiler import (
    CompilationResult,
    CompilerOptions,
    EvaCompiler,
    program_signature,
)
from ..core.executor import execute_reference
from ..core.ir import Program
from ..core.serialization.json_format import dict_to_program, program_to_dict
from ..errors import SerializationError

#: Format marker of the on-disk artifact.
_ARTIFACT_FORMAT = "eva-compiled-program"
_ARTIFACT_VERSION = 1


class CompiledProgram:
    """A compiled EVA program plus its routing signature.

    Build one with :meth:`compile` (from a PyEVA :class:`~repro.frontend.EvaProgram`
    or a core :class:`~repro.core.ir.Program`) or by wrapping an existing
    :class:`CompilationResult`.  The ``signature`` is the content hash of the
    *source* program and compilation policy — the same value
    :class:`repro.serving.ProgramRegistry` keys its cache by — so a client and
    a server that compiled the same source agree on it without coordination.
    """

    def __init__(
        self,
        compilation: CompilationResult,
        signature: Optional[str] = None,
        source: Optional[Program] = None,
    ) -> None:
        self.compilation = compilation
        self.source = source
        if signature is None:
            # Prefer the signature the compiler stamped on the result: the
            # hash of the *source* program, options, and scale overrides —
            # identical to what the serving registry keys by, whichever path
            # produced this compilation.  Only hand-assembled results (e.g.
            # reloaded from an already-compiled graph) lack it; for those the
            # source (or, failing that, the compiled graph) is hashed, which
            # is stable but only matches peers that derived it the same way.
            signature = compilation.signature
        if signature is None:
            graph = source if source is not None else compilation.program
            signature = program_signature(graph, compilation.options)
        self.signature = signature

    # -- construction ------------------------------------------------------------
    @classmethod
    def compile(
        cls,
        program: Any,
        options: Optional[CompilerOptions] = None,
        input_scales: Optional[Dict[str, float]] = None,
        output_scales: Optional[Dict[str, float]] = None,
    ) -> "CompiledProgram":
        """Compile a frontend program (or core graph) into an artifact.

        Accepts a PyEVA :class:`~repro.frontend.EvaProgram` (its ``graph`` is
        used) or a :class:`~repro.core.ir.Program`.
        """
        graph = getattr(program, "graph", program)
        if not isinstance(graph, Program):
            raise SerializationError(
                f"cannot compile {type(program).__name__} as an EVA program"
            )
        compilation = EvaCompiler(options).compile(graph, input_scales, output_scales)
        return cls(compilation, source=graph)

    # -- delegation --------------------------------------------------------------
    @property
    def program(self) -> Program:
        """The compiled (executable) program graph."""
        return self.compilation.program

    @property
    def parameters(self) -> EncryptionParameters:
        """The encryption parameters the compiler selected."""
        return self.compilation.parameters

    @property
    def rotation_steps(self) -> List[int]:
        """The rotation steps clients must generate Galois keys for."""
        return self.compilation.rotation_steps

    @property
    def options(self) -> CompilerOptions:
        """The compiler options this program was compiled with."""
        return self.compilation.options

    @property
    def name(self) -> str:
        """The source program's name."""
        return self.compilation.program.name

    @property
    def vec_size(self) -> int:
        """The ciphertext slot count."""
        return self.compilation.program.vec_size

    @property
    def lane_width(self) -> Optional[int]:
        """Compiler-enforced lane width (None when not lane-lowered)."""
        return self.compilation.lane_width

    @property
    def input_scales(self) -> Dict[str, float]:
        """Required scale per encrypted input, keyed by name."""
        return self.compilation.input_scales

    @property
    def output_scales(self) -> Dict[str, float]:
        """Output scale per output, keyed by name."""
        return self.compilation.output_scales

    def summary(self) -> Dict[str, object]:
        """Human-readable compilation summary plus the content signature."""
        summary = dict(self.compilation.summary())
        summary["signature"] = self.signature[:16]
        return summary

    def execute_reference(self, inputs: Dict[str, Any]) -> Dict[str, np.ndarray]:
        """Run the plaintext reference semantics (identity scheme)."""
        graph = self.source if self.source is not None else self.compilation.program
        return execute_reference(graph, inputs)

    # -- persistence -------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Save the artifact (source + compiled graphs, policy, signature).

        The file is a JSON document built on the existing program
        serialization (:mod:`repro.core.serialization.json_format`); encryption
        parameters are *not* stored — they are re-derived deterministically at
        load time, exactly as the compiler derived them.
        """
        document: Dict[str, Any] = {
            "format": _ARTIFACT_FORMAT,
            "version": _ARTIFACT_VERSION,
            "signature": self.signature,
            "options": self.compilation.options.to_dict(),
            "input_scales": {k: float(v) for k, v in self.compilation.input_scales.items()},
            "output_scales": {k: float(v) for k, v in self.compilation.output_scales.items()},
            "program": program_to_dict(self.compilation.program),
        }
        if self.source is not None:
            document["source"] = program_to_dict(self.source)
        Path(path).write_text(json.dumps(document))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CompiledProgram":
        """Load an artifact saved with :meth:`save`."""
        path = Path(path)
        if not path.exists():
            raise SerializationError(f"no such compiled program file: {path}")
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SerializationError(f"malformed compiled program file: {exc}") from exc
        if not isinstance(document, dict) or document.get("format") != _ARTIFACT_FORMAT:
            raise SerializationError(
                f"{path} is not a compiled program artifact (save a CompiledProgram "
                "with .save(), or load raw programs with repro.core.serialization.load)"
            )
        options = CompilerOptions.from_dict(document.get("options", {}))
        program = dict_to_program(document["program"])
        output_scales = {
            k: float(v) for k, v in document.get("output_scales", {}).items()
        }
        rotation_steps = select_rotation_steps(program)
        parameters = select_parameters(
            program,
            desired_output_scales=output_scales,
            max_rescale_bits=options.max_rescale_bits,
            security_level=options.security_level,
            rotation_steps=rotation_steps,
        )
        compilation = CompilationResult(
            program=program,
            parameters=parameters,
            rotation_steps=rotation_steps,
            options=options,
            input_scales={
                k: float(v) for k, v in document.get("input_scales", {}).items()
            },
            output_scales=output_scales,
        )
        source = (
            dict_to_program(document["source"]) if "source" in document else None
        )
        return cls(
            compilation,
            signature=str(document.get("signature")),
            source=source,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CompiledProgram {self.name!r} vec_size={self.vec_size} "
            f"signature={self.signature[:12]}...>"
        )


def as_compiled_program(compiled: Any) -> CompiledProgram:
    """Coerce a CompilationResult (or CompiledProgram) to a CompiledProgram."""
    if isinstance(compiled, CompiledProgram):
        return compiled
    if isinstance(compiled, CompilationResult):
        return CompiledProgram(compiled)
    raise SerializationError(
        f"expected a CompiledProgram or CompilationResult, got {type(compiled).__name__}"
    )
