"""The server half of the paper's deployment model: evaluate, never decrypt.

A :class:`ServerRuntime` evaluates a compiled program on ciphertext bundles.
It is constructed from the :class:`~repro.api.artifacts.CompiledProgram`
artifact alone — no key material — and accepts per-client *evaluation
contexts* (public + relinearization + Galois keys) either as live objects
derived by :meth:`ClientKit.evaluation_context` or as exported key blobs that
crossed a network boundary.  By construction it can never decrypt: contexts
holding a secret key are refused outright.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

from ..backend.hisa import BackendContext, HomomorphicBackend
from ..core.executor import EvaluationEngine
from ..errors import ExecutionError
from .artifacts import CompiledProgram, as_compiled_program
from .bundles import (
    CipherBundle,
    EncryptedOutputs,
    bundle_from_wire,
    outputs_to_wire,
)


class ServerRuntime:
    """Blind evaluator of one compiled program over ciphertext bundles."""

    def __init__(
        self,
        compiled: Any,
        backend: Optional[HomomorphicBackend] = None,
        threads: int = 1,
    ) -> None:
        self.compiled: CompiledProgram = as_compiled_program(compiled)
        # retire_inputs=False: the bundle's ciphertext handles belong to the
        # client, which may re-submit or re-serialize them after this call.
        self.engine = EvaluationEngine(
            self.compiled.compilation,
            backend=backend,
            threads=threads,
            retire_inputs=False,
        )
        self.backend = self.engine.backend
        self._clients: Dict[str, BackendContext] = {}
        #: Per-client evaluation locks: backend contexts (RNG state, op
        #: counters, real key material) are not safe for concurrent
        #: evaluation, and a threaded transport may deliver two bundles from
        #: one client at once.
        self._client_locks: Dict[str, threading.Lock] = {}
        self._lock = threading.Lock()

    # -- sessions ----------------------------------------------------------------
    @staticmethod
    def _check_no_secret(context: BackendContext) -> BackendContext:
        if getattr(context, "has_secret_key", True):
            raise ExecutionError(
                "ServerRuntime refuses contexts holding a secret key; pass "
                "ClientKit.evaluation_context() (or an exported key blob) so the "
                "server provably cannot decrypt"
            )
        return context

    def attach_client(self, client_id: str, keys: Any) -> BackendContext:
        """Register a client's evaluation key material under ``client_id``.

        ``keys`` is either a live evaluation context (from
        :meth:`ClientKit.evaluation_context`) or the JSON-able blob from
        :meth:`ClientKit.export_evaluation_keys`.  Returns the installed
        context.
        """
        if isinstance(keys, BackendContext):
            context = self._check_no_secret(keys)
        else:
            context = self._check_no_secret(
                self.backend.create_evaluation_context(self.compiled.parameters, keys)
            )
        with self._lock:
            self._clients[str(client_id)] = context
            self._client_locks.setdefault(str(client_id), threading.Lock())
        return context

    def detach_client(self, client_id: str) -> bool:
        """Forget a client's evaluation context; returns whether it existed."""
        with self._lock:
            self._client_locks.pop(str(client_id), None)
            return self._clients.pop(str(client_id), None) is not None

    def _evaluation_lock(self, client_id: str) -> threading.Lock:
        with self._lock:
            return self._client_locks.setdefault(str(client_id), threading.Lock())

    def client_context(self, client_id: str) -> BackendContext:
        """The evaluation context a client attached (raises if absent)."""
        with self._lock:
            context = self._clients.get(str(client_id))
        if context is None:
            raise ExecutionError(
                f"no evaluation keys attached for client {client_id!r}; call "
                "attach_client() first"
            )
        return context

    # -- evaluation --------------------------------------------------------------
    def evaluate(
        self, bundle: CipherBundle, context: Optional[BackendContext] = None
    ) -> EncryptedOutputs:
        """Evaluate one bundle; returns output ciphertexts (still encrypted).

        The bundle's ``program_signature`` must match this runtime's compiled
        program, and the context (explicit, or resolved from the bundle's
        ``client_id``) must hold no secret key.
        """
        if bundle.program_signature != self.compiled.signature:
            raise ExecutionError(
                "bundle was encrypted for a different compilation "
                f"({bundle.program_signature[:12]}... vs "
                f"{self.compiled.signature[:12]}...)"
            )
        if context is None:
            context = self.client_context(bundle.client_id)
        else:
            context = self._check_no_secret(context)
        start = time.perf_counter()
        with self._evaluation_lock(bundle.client_id):
            handles = self.engine.evaluate(context, bundle.ciphertexts, bundle.plain)
        elapsed = time.perf_counter() - start
        return EncryptedOutputs(
            program_signature=self.compiled.signature,
            ciphertexts=handles,
            evaluate_seconds=elapsed,
        )

    def evaluate_wire(
        self, data: Dict[str, Any], client_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """Wire-to-wire evaluation: decode a bundle dict, evaluate, encode outputs.

        This is the call a transport layer makes: everything in and out is a
        JSON-compatible dictionary, decoded and encoded with the *client's*
        evaluation context.
        """
        resolved = str(client_id) if client_id is not None else str(
            data.get("client_id", "default")
        )
        context = self.client_context(resolved)
        bundle = bundle_from_wire(data, context)
        bundle.client_id = resolved
        outputs = self.evaluate(bundle, context=context)
        wire = outputs_to_wire(outputs, context)
        # Both the decoded inputs and the encoded outputs are server-owned
        # copies on this path; release them so the context's live-ciphertext
        # accounting stays bounded across many requests.  A pass-through
        # output can alias an input handle — release each object once.
        seen = set()
        for handle in (*outputs.ciphertexts.values(), *bundle.ciphertexts.values()):
            if id(handle) not in seen:
                seen.add(id(handle))
                context.release(handle)
        return wire

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ServerRuntime program={self.compiled.name!r} "
            f"clients={len(self._clients)}>"
        )
