"""The client half of the paper's deployment model: keys, encrypt, decrypt.

A :class:`ClientKit` owns everything the server must never see — the backend
context with its secret key — and performs the client-side duties around one
compiled program: encrypting inputs into :class:`~repro.api.bundles.CipherBundle`
objects, decrypting the server's :class:`~repro.api.bundles.EncryptedOutputs`,
and exporting the public/evaluation key material a server needs to compute on
the client's ciphertexts.

The kit can also pack several small requests into the lanes of a single
bundle (client-side slot batching) so one homomorphic evaluation answers many
requests, mirroring what the serving layer's :class:`~repro.serving.SlotBatcher`
does for plaintext inputs — but with the packing done *before* encryption,
where the data is still visible to its owner.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..backend.hisa import BackendContext, HomomorphicBackend
from ..core.executor import EvaluationEngine
from ..errors import ExecutionError
from .artifacts import CompiledProgram, as_compiled_program
from .bundles import (
    CipherBundle,
    EncryptedOutputs,
    bundle_to_wire,
    outputs_from_wire,
)


class ClientKit:
    """Key owner and encrypt/decrypt endpoint for one compiled program.

    Parameters
    ----------
    compiled:
        The :class:`CompiledProgram` (or raw ``CompilationResult``) the kit
        encrypts for; encryption scales and levels are read from it.
    backend:
        Homomorphic backend; defaults to the mock simulator.
    client_id:
        Identity stamped on every bundle; servers key sessions by it.
    extra_rotation_steps:
        Additional Galois key steps to generate beyond the compiled program's
        own — the union is computed once, so a step shared between variants
        yields exactly one key.  Use :meth:`for_programs` to build a kit whose
        keys cover several compiled variants (e.g. solo + lane-lowered) of
        one program.
    """

    def __init__(
        self,
        compiled: Any,
        backend: Optional[HomomorphicBackend] = None,
        client_id: str = "default",
        extra_rotation_steps: Optional[Sequence[int]] = None,
    ) -> None:
        if backend is None:
            from ..backend.mock_backend import MockBackend

            backend = MockBackend()
        self.compiled: CompiledProgram = as_compiled_program(compiled)
        self.backend = backend
        self.client_id = str(client_id)
        parameters = self.compiled.parameters
        if extra_rotation_steps:
            from dataclasses import replace

            from ..core.analysis.rotations import merge_rotation_steps

            merged = merge_rotation_steps(
                parameters.rotation_steps, extra_rotation_steps
            )
            if merged != sorted(set(parameters.rotation_steps)):
                parameters = replace(parameters, rotation_steps=merged)
        self.rotation_steps: List[int] = list(parameters.rotation_steps)
        self.context: BackendContext = backend.create_context(parameters)
        self.context.generate_keys()
        self._program = self.compiled.program
        # The engine's encrypt_inputs is the single implementation of the
        # client-side encryption duty (shared with the compat Executor):
        # which inputs are live, which are Cipher, and at what scale each
        # must be encrypted.
        self._engine = EvaluationEngine(self.compiled.compilation, backend=backend)

    @classmethod
    def for_programs(
        cls,
        compilations: Sequence[Any],
        backend: Optional[HomomorphicBackend] = None,
        client_id: str = "default",
    ) -> "ClientKit":
        """A kit whose Galois keys cover several compiled variants at once.

        A client talking to a server that evaluates both the solo and the
        lane-lowered variant of its program must upload keys for both step
        sets — but generating them per variant would duplicate every shared
        step.  This constructor takes the *union* of the variants' rotation
        steps (each Galois key generated and exported exactly once) and
        encrypts against the first compilation.  All variants must agree on
        the encryption parameters (same polynomial degree and modulus chain);
        variants whose parameters differ need their own kit.
        """
        if not compilations:
            raise ExecutionError("for_programs needs at least one compilation")
        programs = [as_compiled_program(c) for c in compilations]
        first = programs[0].parameters
        for other in programs[1:]:
            params = other.parameters
            if (
                params.poly_modulus_degree != first.poly_modulus_degree
                or list(params.coeff_modulus_bits) != list(first.coeff_modulus_bits)
            ):
                raise ExecutionError(
                    "cannot share keys across variants with different "
                    "encryption parameters: "
                    f"(N={first.poly_modulus_degree}, "
                    f"chain={list(first.coeff_modulus_bits)}) vs "
                    f"(N={params.poly_modulus_degree}, "
                    f"chain={list(params.coeff_modulus_bits)})"
                )
        from ..core.analysis.rotations import merge_rotation_steps

        merged = merge_rotation_steps(
            *(p.parameters.rotation_steps for p in programs)
        )
        return cls(
            programs[0],
            backend=backend,
            client_id=client_id,
            extra_rotation_steps=merged,
        )

    # -- key material ------------------------------------------------------------
    def evaluation_context(self) -> BackendContext:
        """A context with public/evaluation keys only — hand this to a server."""
        return self.context.evaluation_context()

    def export_evaluation_keys(self) -> Dict[str, Any]:
        """JSON-able public/evaluation key blob (never contains the secret key)."""
        return self.context.export_evaluation_keys()

    # -- encryption --------------------------------------------------------------
    def encrypt_inputs(self, inputs: Dict[str, Any]) -> CipherBundle:
        """Encrypt ``inputs`` into a bundle a server can evaluate blindly.

        Cipher inputs are encrypted at the scale the compiled program
        requires; Vector inputs (declared unencrypted by the program) travel
        as plain vectors.  A missing live input raises; extra names —
        including declared-but-dead inputs the compiler pruned, which the
        serialization layer may drop entirely — are ignored, matching the
        compat :class:`~repro.core.Executor`.
        """
        ciphertexts, plain = self._engine.encrypt_inputs(self.context, inputs)
        return CipherBundle(
            program_signature=self.compiled.signature,
            vec_size=self.compiled.vec_size,
            ciphertexts=ciphertexts,
            plain=plain,
            client_id=self.client_id,
        )

    # -- decryption --------------------------------------------------------------
    def decrypt_outputs(self, outputs: Any) -> Dict[str, np.ndarray]:
        """Decrypt an :class:`EncryptedOutputs` (or name -> handle dict)."""
        handles = (
            outputs.ciphertexts if isinstance(outputs, EncryptedOutputs) else outputs
        )
        if isinstance(outputs, EncryptedOutputs) and outputs.program_signature:
            if outputs.program_signature != self.compiled.signature:
                raise ExecutionError(
                    "encrypted outputs come from a different compilation "
                    f"({outputs.program_signature[:12]}... vs "
                    f"{self.compiled.signature[:12]}...)"
                )
        vec_size = self.compiled.vec_size
        return {
            name: self.context.decrypt(handle)[:vec_size].copy()
            for name, handle in handles.items()
        }

    # -- wire helpers ------------------------------------------------------------
    def bundle_to_wire(self, bundle: CipherBundle) -> Dict[str, Any]:
        """Serialize a bundle with this client's cipher codec."""
        return bundle_to_wire(bundle, self.context)

    def outputs_from_wire(self, data: Dict[str, Any]) -> EncryptedOutputs:
        """Deserialize the server's encrypted outputs with this client's codec."""
        return outputs_from_wire(data, self.context)

    # -- client-side slot batching -------------------------------------------------
    @property
    def lane_width(self) -> Optional[int]:
        """The compiled program's lane width (None when not lane-lowered).

        When a server registered the program with a pinned ``lane_width``,
        compiling with the same options makes this match the width the server
        reports from ``create_session`` — the alignment that lets
        :meth:`encrypt_packed` bundles batch on the encrypted path.
        """
        return self.compiled.lane_width

    def encrypt_packed(
        self, requests: Sequence[Dict[str, Any]]
    ) -> Tuple[CipherBundle, Any]:
        """Pack several requests into one bundle (one evaluation serves all).

        Packing is sound when the compiled program is slotwise *or* was
        compiled with a ``lane_width`` (lane-lowered rotations); in the
        latter case the lanes are exactly the compiled width.  Returns
        ``(bundle, plan)``; decrypt the server's reply with
        :meth:`decrypt_packed` and the same plan.  Raises
        :class:`~repro.errors.ExecutionError` when the requests do not fit —
        fall back to one bundle per request in that case.
        """
        from ..serving.batching import SlotBatcher

        plan = SlotBatcher().plan(self.compiled.compilation, list(requests))
        if plan is None:
            raise ExecutionError(
                "requests cannot be slot-packed for this program (neither "
                "slotwise nor compiled with a lane_width, or they do not fit "
                "the lanes); encrypt them individually"
            )
        packed = SlotBatcher().pack(plan, list(requests))
        bundle = self.encrypt_inputs(packed)
        return bundle, plan

    def decrypt_packed(
        self, plan: Any, outputs: Any
    ) -> List[Dict[str, np.ndarray]]:
        """Decrypt and de-multiplex a packed evaluation back into per-request results."""
        from ..serving.batching import SlotBatcher

        decrypted = self.decrypt_outputs(outputs)
        return SlotBatcher().unpack(plan, decrypted)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ClientKit client_id={self.client_id!r} program={self.compiled.name!r} "
            f"backend={getattr(self.backend, 'name', '?')!r}>"
        )
