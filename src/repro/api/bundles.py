"""Ciphertext bundles: the data that crosses the client/server boundary.

A :class:`CipherBundle` is what a client ships to a server — backend
ciphertext handles for every encrypted input, plain vectors for the program's
unencrypted inputs, and the compilation signature that routes the bundle to
the right compiled program.  An :class:`EncryptedOutputs` is the server's
reply: output ciphertext handles the client decrypts with its own keys.

Both carry *handles* in memory; :func:`bundle_to_wire` /
:func:`bundle_from_wire` and :func:`outputs_to_wire` / :func:`outputs_from_wire`
convert them to JSON-compatible dictionaries using the backend context's
cipher codec, so the same bundle works in-process and over the TCP transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from ..errors import SerializationError


@dataclass
class CipherBundle:
    """Encrypted inputs for one request, as produced by ``ClientKit.encrypt_inputs``.

    Attributes
    ----------
    program_signature:
        Content hash of the compilation this bundle was encrypted for; a
        server refuses to evaluate a bundle against a different compilation.
    vec_size:
        Logical vector size of the program (slots the client cares about).
    ciphertexts:
        Backend ciphertext handle per encrypted (Cipher) input name.
    plain:
        Plain vector per unencrypted (Vector) input name.  These travel in
        the clear by construction — the program declared them unencrypted.
    client_id:
        The client identity the server uses to resolve the session
        (evaluation keys) this bundle must be evaluated under.
    """

    program_signature: str
    vec_size: int
    ciphertexts: Dict[str, Any] = field(default_factory=dict)
    plain: Dict[str, np.ndarray] = field(default_factory=dict)
    client_id: str = "default"

    def input_names(self) -> List[str]:
        """All input names in the bundle, encrypted and plain alike."""
        return sorted(set(self.ciphertexts) | set(self.plain))


@dataclass
class EncryptedOutputs:
    """Ciphertext outputs of one server evaluation (decrypt with ClientKit)."""

    program_signature: str
    ciphertexts: Dict[str, Any] = field(default_factory=dict)
    evaluate_seconds: float = 0.0

    def output_names(self) -> List[str]:
        """The encrypted output names."""
        return sorted(self.ciphertexts)


# ---------------------------------------------------------------------------
# Wire conversion.  ``context`` is any backend context implementing the cipher
# codec (encode_cipher / decode_cipher); the client uses its full context, the
# server its evaluation-only context.
# ---------------------------------------------------------------------------

def bundle_to_wire(bundle: CipherBundle, context: Any) -> Dict[str, Any]:
    """Serialize a bundle into a JSON-compatible dictionary."""
    return {
        "program_signature": bundle.program_signature,
        "vec_size": int(bundle.vec_size),
        "ciphertexts": {
            name: context.encode_cipher(handle)
            for name, handle in bundle.ciphertexts.items()
        },
        "plain": {
            name: [float(v) for v in np.atleast_1d(np.asarray(value)).ravel()]
            for name, value in bundle.plain.items()
        },
        "client_id": bundle.client_id,
    }


def bundle_from_wire(data: Dict[str, Any], context: Any) -> CipherBundle:
    """Inverse of :func:`bundle_to_wire`."""
    if not isinstance(data, dict) or "program_signature" not in data:
        raise SerializationError("malformed cipher bundle: missing program_signature")
    try:
        return CipherBundle(
            program_signature=str(data["program_signature"]),
            vec_size=int(data["vec_size"]),
            ciphertexts={
                str(name): context.decode_cipher(cipher)
                for name, cipher in data.get("ciphertexts", {}).items()
            },
            plain={
                str(name): np.asarray(values, dtype=np.float64)
                for name, values in data.get("plain", {}).items()
            },
            client_id=str(data.get("client_id", "default")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed cipher bundle: {exc}") from exc


def outputs_to_wire(outputs: EncryptedOutputs, context: Any) -> Dict[str, Any]:
    """Serialize encrypted outputs into a JSON-compatible dictionary."""
    return {
        "program_signature": outputs.program_signature,
        "ciphertexts": {
            name: context.encode_cipher(handle)
            for name, handle in outputs.ciphertexts.items()
        },
        "evaluate_seconds": float(outputs.evaluate_seconds),
    }


def outputs_from_wire(data: Dict[str, Any], context: Any) -> EncryptedOutputs:
    """Inverse of :func:`outputs_to_wire`."""
    if not isinstance(data, dict) or "ciphertexts" not in data:
        raise SerializationError("malformed encrypted outputs: missing ciphertexts")
    try:
        return EncryptedOutputs(
            program_signature=str(data.get("program_signature", "")),
            ciphertexts={
                str(name): context.decode_cipher(cipher)
                for name, cipher in data["ciphertexts"].items()
            },
            evaluate_seconds=float(data.get("evaluate_seconds", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed encrypted outputs: {exc}") from exc
