"""``@eva_program``: trace plain Python functions into EVA program families.

The decorator turns an ordinary function over :class:`~repro.frontend.Expr`
values into an :class:`EvaProgramFamily` — a family of PyEVA programs
parameterized by ``vec_size`` (and ``default_scale``).  Calling the family
instantiates (traces) one member; tracing is cached per parameterization, and
compilation is cached per :func:`~repro.core.compiler.program_signature`, so
repeated instantiation of the same member costs a dictionary lookup::

    @eva_program(vec_size=4096, default_scale=30)
    def squares(x):
        return x ** 2 + x

    program = squares(vec_size=1024)          # traced EvaProgram
    compiled = squares.compile(vec_size=1024) # cached CompiledProgram

Every function parameter becomes an encrypted input named after it; list the
names that should stay unencrypted in ``plain=...``.  The function returns
its outputs as a single :class:`Expr` (named ``"out"``), a tuple (named
``"out0"``, ``"out1"``, ...), or a dict mapping output names to expressions.
The classic ``with program:`` block remains available as sugar for programs
that are easier to write imperatively.
"""

from __future__ import annotations

import functools
import inspect
import threading
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..core.compiler import CompilerOptions, program_signature
from ..errors import CompilationError
from ..frontend.pyeva import EvaProgram, Expr
from .artifacts import CompiledProgram


class EvaProgramFamily:
    """A traced family of EVA programs sharing one Python definition."""

    def __init__(
        self,
        func: Callable[..., Any],
        vec_size: int = 4096,
        default_scale: float = 30.0,
        name: Optional[str] = None,
        plain: Sequence[str] = (),
    ) -> None:
        self.func = func
        self.name = name or func.__name__
        self.default_vec_size = int(vec_size)
        self.default_scale = float(default_scale)
        self.plain = tuple(plain)
        parameters = inspect.signature(func).parameters
        for param in parameters.values():
            if param.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                raise CompilationError(
                    f"@eva_program function {self.name!r} cannot use *args/**kwargs; "
                    "every parameter must name one program input"
                )
        self.input_names = tuple(parameters)
        unknown = set(self.plain) - set(self.input_names)
        if unknown:
            raise CompilationError(
                f"plain={sorted(unknown)} are not parameters of {self.name!r}"
            )
        self._programs: Dict[Tuple[int, float], EvaProgram] = {}
        self._compiled: Dict[str, CompiledProgram] = {}
        self._lock = threading.Lock()
        functools.update_wrapper(self, func, updated=())

    # -- tracing -----------------------------------------------------------------
    def instantiate(
        self,
        vec_size: Optional[int] = None,
        default_scale: Optional[float] = None,
    ) -> EvaProgram:
        """Trace (or fetch the cached trace of) one member of the family."""
        vec = int(vec_size) if vec_size is not None else self.default_vec_size
        scale = (
            float(default_scale) if default_scale is not None else self.default_scale
        )
        key = (vec, scale)
        with self._lock:
            cached = self._programs.get(key)
        if cached is not None:
            return cached
        program = self._trace(vec, scale)
        with self._lock:
            return self._programs.setdefault(key, program)

    __call__ = instantiate

    def _trace(self, vec_size: int, default_scale: float) -> EvaProgram:
        program = EvaProgram(self.name, vec_size=vec_size, default_scale=default_scale)
        with program:
            arguments = {
                name: (
                    program.input_plain(name)
                    if name in self.plain
                    else program.input_encrypted(name)
                )
                for name in self.input_names
            }
            result = self.func(**arguments)
            for out_name, expr in self._named_outputs(result).items():
                program.output(out_name, expr)
        return program

    def _named_outputs(self, result: Any) -> Dict[str, Expr]:
        if isinstance(result, Expr):
            return {"out": result}
        if isinstance(result, dict):
            outputs = result
        elif isinstance(result, (tuple, list)):
            outputs = {f"out{i}": expr for i, expr in enumerate(result)}
        else:
            raise CompilationError(
                f"@eva_program function {self.name!r} must return an Expr, a "
                f"tuple/list of Exprs, or a dict of name -> Expr; got "
                f"{type(result).__name__}"
            )
        if not outputs:
            raise CompilationError(
                f"@eva_program function {self.name!r} returned no outputs"
            )
        for out_name, expr in outputs.items():
            if not isinstance(expr, Expr):
                raise CompilationError(
                    f"output {out_name!r} of {self.name!r} is not an Expr "
                    f"(got {type(expr).__name__})"
                )
        return outputs

    # -- compilation -------------------------------------------------------------
    def compile(
        self,
        vec_size: Optional[int] = None,
        default_scale: Optional[float] = None,
        options: Optional[CompilerOptions] = None,
        input_scales: Optional[Dict[str, float]] = None,
        output_scales: Optional[Dict[str, float]] = None,
    ) -> CompiledProgram:
        """Compile one member, cached per program signature.

        Distinct parameterizations (and distinct compiler options) compile
        separately; identical ones — even requested through different family
        objects tracing the same graph — share the signature-keyed cache.
        """
        program = self.instantiate(vec_size, default_scale)
        signature = program_signature(
            program.graph, options, input_scales, output_scales
        )
        with self._lock:
            cached = self._compiled.get(signature)
        if cached is not None:
            return cached
        compiled = CompiledProgram.compile(
            program, options=options, input_scales=input_scales,
            output_scales=output_scales,
        )
        with self._lock:
            return self._compiled.setdefault(signature, compiled)

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters of the trace and compile caches."""
        with self._lock:
            return {
                "traced": len(self._programs),
                "compiled": len(self._compiled),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<EvaProgramFamily {self.name!r} inputs={list(self.input_names)} "
            f"vec_size={self.default_vec_size}>"
        )


def eva_program(
    func: Optional[Callable[..., Any]] = None,
    *,
    vec_size: int = 4096,
    default_scale: float = 30.0,
    name: Optional[str] = None,
    plain: Sequence[str] = (),
) -> Any:
    """Decorator: turn a Python function into an :class:`EvaProgramFamily`.

    Use bare (``@eva_program``) for the defaults or parameterized
    (``@eva_program(vec_size=1024, default_scale=25)``).  ``plain`` lists the
    parameters that are unencrypted vector inputs.
    """

    def wrap(f: Callable[..., Any]) -> EvaProgramFamily:
        """Wrap the traced function into an EvaProgramFamily."""
        return EvaProgramFamily(
            f,
            vec_size=vec_size,
            default_scale=default_scale,
            name=name,
            plain=plain,
        )

    if func is not None:
        if not callable(func):
            raise CompilationError(
                "@eva_program takes keyword arguments only, e.g. "
                "@eva_program(vec_size=1024)"
            )
        return wrap(func)
    return wrap
