"""The public client/server API of the EVA reproduction.

The paper's deployment model is asymmetric: the *client* generates keys and
encrypts its inputs, the *server* evaluates the compiled program on
ciphertexts only, and the client decrypts the results.  This namespace
exposes that workflow as three first-class artifacts plus a tracing frontend:

* :class:`CompiledProgram` — the compiler's output, savable/loadable, carrying
  the content signature every cache keys by;
* :class:`ClientKit` — key owner; ``encrypt_inputs()`` / ``decrypt_outputs()``
  plus evaluation-key export for the server;
* :class:`ServerRuntime` — blind evaluator over :class:`CipherBundle` objects;
  refuses any context holding a secret key;
* :func:`eva_program` — decorator tracing a plain Python function into an
  :class:`EvaProgramFamily` parameterized by ``vec_size``.

A minimal end-to-end flow::

    from repro.api import ClientKit, ServerRuntime, eva_program

    @eva_program(vec_size=1024, default_scale=30)
    def squares(x):
        return x ** 2 + x

    compiled = squares.compile()

    client = ClientKit(compiled)                      # client: keygen
    server = ServerRuntime(compiled)                  # server: no keys
    server.attach_client("alice", client.evaluation_context())

    bundle = client.encrypt_inputs({"x": data})       # client: encrypt
    encrypted = server.evaluate(bundle)               # server: blind evaluate
    outputs = client.decrypt_outputs(encrypted)       # client: decrypt

The classic one-process API (``EvaProgram`` + ``Executor.execute``) remains
available — re-exported here — as a compatibility layer.
"""

from __future__ import annotations

from typing import Any

from ..core.compiler import (
    CompilationResult,
    CompilerOptions,
    EvaCompiler,
    compile_program,
    program_signature,
)
from ..core.executor import (
    EvaluationEngine,
    ExecutionResult,
    ExecutionStats,
    Executor,
    ReferenceExecutor,
    execute_reference,
)
from ..core.ir import Program
from ..frontend.pyeva import (
    EvaProgram,
    Expr,
    constant,
    input_encrypted,
    input_plain,
    output,
)
from .artifacts import CompiledProgram, as_compiled_program
from .bundles import (
    CipherBundle,
    EncryptedOutputs,
    bundle_from_wire,
    bundle_to_wire,
    outputs_from_wire,
    outputs_to_wire,
)
from .client import ClientKit
from .runtime import ServerRuntime
from .tracing import EvaProgramFamily, eva_program

#: Serving-layer names resolved lazily to avoid a circular import
#: (repro.serving itself consumes the bundle types defined here).
_SERVING_EXPORTS = ("EvaServer", "EvaTcpServer", "ServingClient")

__all__ = [
    # three artifacts
    "CompiledProgram",
    "ClientKit",
    "ServerRuntime",
    # bundles + wire codecs
    "CipherBundle",
    "EncryptedOutputs",
    "bundle_to_wire",
    "bundle_from_wire",
    "outputs_to_wire",
    "outputs_from_wire",
    # tracing frontend
    "eva_program",
    "EvaProgramFamily",
    # compiler + frontend re-exports
    "CompilationResult",
    "CompilerOptions",
    "EvaCompiler",
    "compile_program",
    "program_signature",
    "EvaProgram",
    "Expr",
    "Program",
    "constant",
    "input_encrypted",
    "input_plain",
    "output",
    # execution re-exports
    "EvaluationEngine",
    "ExecutionResult",
    "ExecutionStats",
    "Executor",
    "ReferenceExecutor",
    "execute_reference",
    "as_compiled_program",
    *_SERVING_EXPORTS,
]


def __getattr__(name: str) -> Any:
    if name in _SERVING_EXPORTS:
        from .. import serving

        return getattr(serving, name)
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
