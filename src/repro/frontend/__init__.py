"""PyEVA: Python frontend for the EVA language (Section 7.1)."""

from .pyeva import (
    EvaProgram,
    Expr,
    constant,
    current_program,
    input_encrypted,
    input_plain,
    output,
    sum_slots,
)

__all__ = [
    "EvaProgram",
    "Expr",
    "constant",
    "current_program",
    "input_encrypted",
    "input_plain",
    "output",
    "sum_slots",
]
