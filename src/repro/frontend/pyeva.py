"""PyEVA: the Python-embedded DSL frontend for EVA (Section 7.1).

PyEVA mirrors the frontend of the paper: an :class:`EvaProgram` is a context
manager; inside a ``with program:`` block, calls such as
:func:`input_encrypted`, :func:`constant`, and :func:`output` record nodes in
the active program, and :class:`Expr` overloads the Python operators so that
programs read like ordinary NumPy-style arithmetic::

    program = EvaProgram("squares", vec_size=8)
    with program:
        x = input_encrypted("x", scale=30)
        y = x ** 2 + x
        output("y", y, scale=30)

    compiled = program.compile()

Rotations use the shift operators (``x << 3`` rotates left by three slots, as
in the paper's Sobel example), and ``**`` with a non-negative integer exponent
expands to a balanced multiplication tree (``x ** 0`` is the constant one at
the program's default scale).  Division by a plaintext scalar or vector
lowers to multiplication by the reciprocal (``x / 4`` is ``x * 0.25``);
dividing *by* an encrypted value is not expressible in CKKS and raises a
:class:`~repro.errors.CompilationError`.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.compiler import CompilationResult, CompilerOptions, EvaCompiler
from ..core.ir import Program, Term
from ..core.types import Op, ValueType
from ..errors import CompilationError

_active_programs = threading.local()


def _program_stack() -> List["EvaProgram"]:
    if not hasattr(_active_programs, "stack"):
        _active_programs.stack = []
    return _active_programs.stack


def current_program() -> "EvaProgram":
    """The innermost active ``with program:`` block."""
    stack = _program_stack()
    if not stack:
        raise CompilationError(
            "no active EvaProgram; use 'with program:' around PyEVA calls"
        )
    return stack[-1]


Number = Union[int, float]
VectorLike = Union[Number, Sequence[float], np.ndarray]


class Expr:
    """A handle to a term of the active program, with operator overloading."""

    __slots__ = ("program", "term")

    def __init__(self, program: "EvaProgram", term: Term) -> None:
        self.program = program
        self.term = term

    # -- helpers ----------------------------------------------------------------
    def _wrap(self, other: Any) -> "Expr":
        if isinstance(other, Expr):
            if other.program is not self.program:
                raise CompilationError("cannot mix expressions from different programs")
            return other
        return self.program.constant(other)

    def _emit(self, op: Op, *args: "Expr", **attrs: Any) -> "Expr":
        term = self.program.graph.make_term(op, [a.term for a in args], **attrs)
        if self.program.current_kernel is not None:
            term.attributes["kernel"] = self.program.current_kernel
        return Expr(self.program, term)

    # -- arithmetic ---------------------------------------------------------------
    def __add__(self, other: Any) -> "Expr":
        return self._emit(Op.ADD, self, self._wrap(other))

    def __radd__(self, other: Any) -> "Expr":
        return self._wrap(other).__add__(self)

    def __sub__(self, other: Any) -> "Expr":
        return self._emit(Op.SUB, self, self._wrap(other))

    def __rsub__(self, other: Any) -> "Expr":
        return self._wrap(other).__sub__(self)

    def __mul__(self, other: Any) -> "Expr":
        return self._emit(Op.MULTIPLY, self, self._wrap(other))

    def __rmul__(self, other: Any) -> "Expr":
        return self._wrap(other).__mul__(self)

    def __neg__(self) -> "Expr":
        return self._emit(Op.NEGATE, self)

    def __pow__(self, exponent: int) -> "Expr":
        if not isinstance(exponent, int) or isinstance(exponent, bool) or exponent < 0:
            raise CompilationError(
                f"exponent must be a non-negative integer, got {exponent!r}"
            )
        if exponent == 0:
            # x ** 0 is the constant one, emitted at the program's default
            # scale (the waterline when no larger input scale exists).
            return self.program.constant(1.0)
        # Balanced exponentiation keeps the multiplicative depth logarithmic.
        result: Optional[Expr] = None
        base = self
        remaining = exponent
        while remaining:
            if remaining & 1:
                result = base if result is None else result * base
            remaining >>= 1
            if remaining:
                base = base * base
        assert result is not None
        return result

    def __truediv__(self, other: Any) -> "Expr":
        if isinstance(other, Expr):
            raise CompilationError(
                "division by an encrypted (or program) value is not expressible "
                "in CKKS arithmetic; divide by a plaintext scalar or vector, or "
                "multiply by a polynomial approximation of the reciprocal"
            )
        divisor = np.atleast_1d(np.asarray(other, dtype=np.float64))
        if np.any(divisor == 0.0):
            raise CompilationError("division by zero in a PyEVA expression")
        reciprocal = 1.0 / divisor
        return self * (float(reciprocal[0]) if reciprocal.size == 1 else reciprocal)

    def __rtruediv__(self, other: Any) -> "Expr":
        raise CompilationError(
            "dividing a plaintext by an encrypted value requires a reciprocal "
            "of ciphertext data, which CKKS cannot compute exactly; use a "
            "polynomial approximation of 1/x instead"
        )

    def __lshift__(self, steps: int) -> "Expr":
        return self._emit(Op.ROTATE_LEFT, self, rotation=int(steps))

    def __rshift__(self, steps: int) -> "Expr":
        return self._emit(Op.ROTATE_RIGHT, self, rotation=int(steps))

    # -- reductions ----------------------------------------------------------------
    def sum(self) -> "Expr":
        """Sum all slots; every slot of the result holds the total."""
        return self._emit(Op.SUM, self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Expr {self.term!r}>"


class EvaProgram:
    """A PyEVA program under construction.

    Parameters
    ----------
    name:
        Program name (used in serialization and reports).
    vec_size:
        Size of every Cipher/Vector value; must be a power of two.
    default_scale:
        Scale (bits) applied to constants created implicitly from Python
        numbers and to inputs/outputs when no scale is given.
    """

    def __init__(self, name: str = "pyeva", vec_size: int = 4096, default_scale: float = 30.0) -> None:
        self.graph = Program(name, vec_size=vec_size)
        self.default_scale = float(default_scale)
        self.current_kernel: Optional[str] = None
        self._output_counter = 0

    # -- context management -------------------------------------------------------
    def __enter__(self) -> "EvaProgram":
        _program_stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        stack = _program_stack()
        if not stack or stack[-1] is not self:
            raise CompilationError("mismatched EvaProgram context exit")
        stack.pop()

    # -- program construction ------------------------------------------------------
    @property
    def name(self) -> str:
        return self.graph.name

    @property
    def vec_size(self) -> int:
        return self.graph.vec_size

    def input_encrypted(self, name: str, scale: Optional[float] = None) -> Expr:
        """Declare an encrypted (Cipher) input."""
        bits = self.default_scale if scale is None else float(scale)
        return Expr(self, self.graph.input(name, ValueType.CIPHER, scale=bits))

    def input_plain(self, name: str, scale: Optional[float] = None) -> Expr:
        """Declare an unencrypted vector input."""
        bits = self.default_scale if scale is None else float(scale)
        return Expr(self, self.graph.input(name, ValueType.VECTOR, scale=bits))

    def constant(self, value: VectorLike, scale: Optional[float] = None) -> Expr:
        """Create a plaintext constant (scalar or vector) at the given scale."""
        bits = self.default_scale if scale is None else float(scale)
        if isinstance(value, Expr):
            return value
        return Expr(self, self.graph.constant(value, scale=bits))

    def output(self, name: str, expr: Expr, scale: Optional[float] = None) -> None:
        """Mark ``expr`` as a named program output with a desired scale."""
        bits = self.default_scale if scale is None else float(scale)
        self.graph.set_output(name, expr.term, scale=bits)

    def kernel(self, label: str) -> "_KernelScope":
        """Label instructions created in the returned scope with a kernel name.

        Kernel labels drive the bulk-synchronous baseline scheduler used for
        the CHET comparison; they have no effect on program semantics.
        """
        return _KernelScope(self, label)

    # -- compilation ----------------------------------------------------------------
    def compile(
        self,
        input_scales: Optional[Dict[str, float]] = None,
        output_scales: Optional[Dict[str, float]] = None,
        options: Optional[CompilerOptions] = None,
    ) -> CompilationResult:
        """Compile the program with the EVA compiler (Algorithm 1)."""
        return EvaCompiler(options).compile(self.graph, input_scales, output_scales)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EvaProgram {self.name!r} vec_size={self.vec_size} terms={len(self.graph)}>"


class _KernelScope:
    """Context manager labelling new instructions with a kernel name."""

    def __init__(self, program: EvaProgram, label: str) -> None:
        self.program = program
        self.label = label
        self._previous: Optional[str] = None

    def __enter__(self) -> "_KernelScope":
        self._previous = self.program.current_kernel
        self.program.current_kernel = self.label
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.program.current_kernel = self._previous


# ---------------------------------------------------------------------------
# Module-level convenience functions operating on the active program, matching
# the paper's PyEVA examples (Figure 6).
# ---------------------------------------------------------------------------

def input_encrypted(name: str, scale: Optional[float] = None) -> Expr:
    """Declare an encrypted input in the active program."""
    return current_program().input_encrypted(name, scale)


def input_plain(name: str, scale: Optional[float] = None) -> Expr:
    """Declare an unencrypted vector input in the active program."""
    return current_program().input_plain(name, scale)


def constant(value: VectorLike, scale: Optional[float] = None) -> Expr:
    """Create a plaintext constant in the active program."""
    return current_program().constant(value, scale)


def output(name: str, expr: Expr, scale: Optional[float] = None) -> None:
    """Declare a named output of the active program."""
    current_program().output(name, expr, scale)


def sum_slots(expr: Expr) -> Expr:
    """Sum all slots of ``expr`` (every slot of the result holds the total)."""
    return expr.sum()
