"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in
offline environments whose setuptools predates full PEP 660 editable-install
support (no ``wheel`` package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of EVA: an encrypted vector arithmetic language and "
        "compiler for efficient homomorphic computation (PLDI 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
