"""Tests for the cluster control plane: quotas, fair dequeue, artifact cache,
lane-width precompilation, session-store GC, and the admin wire ops."""

import json
import threading
import time

import numpy as np
import pytest

from repro.backend import MockBackend
from repro.core import compile_program
from repro.core.executor import Executor
from repro.core.serialization import messages
from repro.errors import QuotaExceededError, SerializationError, ServingError
from repro.frontend import EvaProgram, input_encrypted, output
from repro.serving import (
    ArtifactCache,
    EvaServer,
    EvaTcpServer,
    FairnessPolicy,
    JobEngine,
    LaneWidthPolicy,
    ProgramRegistry,
    QuotaLedger,
    ServingClient,
    SessionStore,
    TokenBucket,
    WidthHistogram,
)


def make_poly_program(name="poly", vec_size=32):
    program = EvaProgram(name, vec_size=vec_size, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("y", x * x + x + 1.0, 25)
    return program


def make_rotation_program(name="rot", vec_size=64):
    """A rotation-bearing program (not slotwise, lane-lowerable)."""
    program = EvaProgram(name, vec_size=vec_size, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("y", x + (x << 1), 25)
    return program


class TestTokenBucket:
    def test_burst_then_throttle(self):
        bucket = TokenBucket(rate=10.0, capacity=3)
        now = time.monotonic()
        assert bucket.try_acquire(now) == 0.0
        assert bucket.try_acquire(now) == 0.0
        assert bucket.try_acquire(now) == 0.0
        retry = bucket.try_acquire(now)
        assert retry > 0.0
        # Exactly one token is missing, earned back at 10/s.
        assert retry == pytest.approx(0.1, abs=1e-6)

    def test_refills_over_time(self):
        bucket = TokenBucket(rate=10.0, capacity=1)
        now = time.monotonic()
        assert bucket.try_acquire(now) == 0.0
        assert bucket.try_acquire(now) > 0.0
        assert bucket.try_acquire(now + 0.2) == 0.0

    def test_capacity_caps_banked_tokens(self):
        bucket = TokenBucket(rate=100.0, capacity=2)
        now = time.monotonic()
        # A long idle period banks at most `capacity` tokens.
        assert bucket.try_acquire(now + 100.0) == 0.0
        assert bucket.try_acquire(now + 100.0) == 0.0
        assert bucket.try_acquire(now + 100.0) > 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, capacity=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, capacity=0)


class TestFairnessPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            FairnessPolicy(quota_rps=0.0)
        with pytest.raises(ValueError):
            FairnessPolicy(quota_rps=1.0, burst=0)
        with pytest.raises(ValueError):
            FairnessPolicy(max_inflight=0)
        with pytest.raises(ValueError):
            FairnessPolicy(weights={"a": -1.0})

    def test_enabled_and_defaults(self):
        assert not FairnessPolicy().enabled
        assert FairnessPolicy(quota_rps=5.0).enabled
        assert FairnessPolicy(max_inflight=2).enabled
        assert FairnessPolicy(quota_rps=5.0).bucket_capacity() == 10.0
        assert FairnessPolicy(quota_rps=5.0, burst=3).bucket_capacity() == 3.0
        policy = FairnessPolicy(weights={"vip": 2.0})
        assert policy.weight_of("vip") == 2.0
        assert policy.weight_of("anyone") == 1.0


class TestQuotaLedger:
    def test_disabled_ledger_admits_everything(self):
        ledger = QuotaLedger(None)
        for _ in range(1000):
            ledger.admit("anyone")
        assert not ledger.enabled

    def test_rate_quota(self):
        ledger = QuotaLedger(FairnessPolicy(quota_rps=100.0, burst=2))
        ledger.admit("alice")
        ledger.admit("alice")
        with pytest.raises(QuotaExceededError) as info:
            ledger.admit("alice")
        assert info.value.retry_after > 0.0
        # A different client has its own bucket.
        ledger.admit("bob")
        assert ledger.throttled == 1

    def test_inflight_cap_and_release(self):
        ledger = QuotaLedger(FairnessPolicy(max_inflight=2))
        ledger.admit("alice")
        ledger.admit("alice")
        assert ledger.inflight("alice") == 2
        with pytest.raises(QuotaExceededError):
            ledger.admit("alice")
        ledger.release("alice")
        ledger.admit("alice")  # a freed slot admits again
        summary = ledger.summary()
        assert summary["throttled"] == 1
        assert summary["clients_inflight"] == {"alice": 2}


class TestFairDequeue:
    def _run_engine(self, submissions, fairness=None, max_batch=1):
        """Submit jobs while the single worker is plugged; return serve order."""
        order = []
        release = threading.Event()

        def handler(jobs):
            if jobs[0].group == "plug":
                release.wait(10)
            else:
                order.extend(job.client for job in jobs)
            return [None] * len(jobs)

        engine = JobEngine(
            handler, workers=1, max_batch=max_batch, batch_window=0.0,
            fairness=fairness,
        )
        plug = engine.submit("plug", None, client="plug-client")
        time.sleep(0.05)  # let the worker pick the plug up
        futures = [
            engine.submit(group, None, client=client)
            for client, group in submissions
        ]
        release.set()
        plug.result(10)
        for future in futures:
            future.result(10)
        engine.close()
        return order

    def test_light_client_not_starved_by_greedy_backlog(self):
        """The fair-dequeue property: a client with 2 queued jobs is served
        interleaved with a client holding a 20-job backlog, not after it."""
        submissions = [("greedy", ("g", i)) for i in range(20)]
        submissions += [("light", ("l", i)) for i in range(2)]
        order = self._run_engine(submissions)
        light_positions = [i for i, client in enumerate(order) if client == "light"]
        assert len(light_positions) == 2
        # Pure FIFO would put them at positions 20 and 21; weighted fair
        # queueing alternates clients, so both land in the first handful.
        assert max(light_positions) <= 5, order

    def test_equal_weight_clients_alternate(self):
        submissions = []
        for i in range(6):
            submissions.append(("a", ("a", i)))
        for i in range(6):
            submissions.append(("b", ("b", i)))
        order = self._run_engine(submissions)
        # In every prefix the service imbalance stays within one job.
        for cut in range(1, len(order) + 1):
            served_a = order[:cut].count("a")
            served_b = order[:cut].count("b")
            assert abs(served_a - served_b) <= 1, order

    def test_weighted_client_gets_proportional_service(self):
        fairness = FairnessPolicy(weights={"heavy": 2.0})
        submissions = [("heavy", ("h", i)) for i in range(10)]
        submissions += [("normal", ("n", i)) for i in range(10)]
        order = self._run_engine(submissions, fairness=fairness)
        first_nine = order[:9]
        # Weight 2 earns ~2 of every 3 slots while both queues are busy.
        assert first_nine.count("heavy") >= 5, order

    def test_same_client_stays_fifo(self):
        submissions = [("solo", ("s", i)) for i in range(8)]
        order = self._run_engine(submissions)
        assert order == ["solo"] * 8

    def test_batching_still_drains_groups(self):
        """Same-group jobs of one client still batch under fair dequeue."""
        batches = []

        def handler(jobs):
            batches.append([job.client for job in jobs])
            time.sleep(0.02)
            return [None] * len(jobs)

        engine = JobEngine(handler, workers=1, max_batch=8, batch_window=0.0)
        futures = [engine.submit("grp", i, client="alice") for i in range(8)]
        for future in futures:
            future.result(10)
        engine.close()
        assert max(len(batch) for batch in batches) > 1


class TestEngineQuotas:
    def test_inflight_cap_at_admission(self):
        release = threading.Event()

        def handler(jobs):
            release.wait(10)
            return [None] * len(jobs)

        engine = JobEngine(
            handler, workers=1, max_batch=1,
            fairness=FairnessPolicy(max_inflight=2),
        )
        first = engine.submit("g1", None, client="alice")
        second = engine.submit("g2", None, client="alice")
        with pytest.raises(QuotaExceededError):
            engine.submit("g3", None, client="alice")
        # Other clients are unaffected by alice's cap.
        third = engine.submit("g4", None, client="bob")
        release.set()
        for future in (first, second, third):
            future.result(10)
        engine.close()
        assert engine.metrics.throttled == 1
        # Settled futures release their slots: alice can submit again.
        engine2 = JobEngine(
            lambda jobs: [None] * len(jobs), workers=1,
            fairness=FairnessPolicy(max_inflight=2),
        )
        engine2.submit("g", None, client="alice").result(10)
        engine2.submit("g", None, client="alice").result(10)
        engine2.close()

    def test_rate_quota_at_admission(self):
        engine = JobEngine(
            lambda jobs: [None] * len(jobs), workers=1,
            fairness=FairnessPolicy(quota_rps=1000.0, burst=2),
        )
        engine.submit("g", None, client="alice").result(10)
        engine.submit("g", None, client="alice").result(10)
        with pytest.raises(QuotaExceededError) as info:
            engine.submit("g", None, client="alice")
        assert info.value.retry_after > 0.0
        engine.close()


class TestServerQuotas:
    def test_server_throttles_and_recovers(self):
        server = EvaServer(
            backend=MockBackend(error_model="none"),
            batch_window=0.0,
            # A rate slow enough that the bucket cannot refill between two
            # synchronous requests: the burst is the effective budget.
            fairness=FairnessPolicy(quota_rps=0.5, burst=2),
        )
        server.register("poly", make_poly_program())
        server.request("poly", {"x": [1.0]})
        server.request("poly", {"x": [1.0]})
        with pytest.raises(QuotaExceededError):
            server.request("poly", {"x": [1.0]})
        # Another client is not collateral damage.
        server.request("poly", {"x": [1.0]}, client_id="other")
        stats = server.stats()
        assert stats["quota"]["enabled"]
        assert stats["quota"]["throttled"] >= 1
        assert stats["engine"]["throttled"] >= 1
        server.close()

    def test_pipelined_connection_hits_quota_on_the_wire(self):
        """A TCP client bursting past its quota gets 429-style replies with
        retry_after, while a second client proceeds untouched."""
        server = EvaServer(
            backend=MockBackend(error_model="none"),
            batch_window=0.0,
            fairness=FairnessPolicy(quota_rps=5.0, burst=3),
        )
        server.register("poly", make_poly_program())
        tcp = EvaTcpServer(server, port=0)
        tcp.start_background()
        host, port = tcp.address
        try:
            with ServingClient(host, port) as greedy:
                served = throttled = 0
                retry_after = None
                for _ in range(10):
                    try:
                        greedy.submit("poly", {"x": [1.0]}, client_id="greedy")
                        served += 1
                    except QuotaExceededError as exc:
                        throttled += 1
                        retry_after = exc.retry_after
                # The burst is served, the rest throttled — allowing for
                # tokens that refill while the loop's roundtrips run.
                assert served + throttled == 10
                assert served >= 3 and throttled >= 1, (served, throttled)
                assert retry_after is not None and retry_after > 0.0
                # The throttled connection itself is still usable.
                assert greedy.ping()
            with ServingClient(host, port) as light:
                outputs = light.submit("poly", {"x": [2.0]}, client_id="light")
                assert outputs["y"][0] == pytest.approx(7.0, abs=1e-6)
        finally:
            tcp.shutdown()
            server.close()


class TestArtifactCache:
    @pytest.fixture
    def graph(self):
        return make_rotation_program().graph

    def test_save_load_roundtrip(self, tmp_path, graph):
        cache = ArtifactCache(tmp_path)
        compilation = compile_program(graph)
        path = cache.save(compilation)
        assert path is not None and path.exists()
        loaded = cache.load(compilation.signature)
        assert loaded is not None
        assert loaded.parameters == compilation.parameters
        assert sorted(loaded.rotation_steps) == sorted(compilation.rotation_steps)
        assert loaded.signature == compilation.signature
        # The reloaded program computes the same thing.
        backend = MockBackend(error_model="none")
        x = np.linspace(-1, 1, graph.vec_size)
        expected = Executor(compilation, backend).execute({"x": x}).outputs["y"]
        got = Executor(loaded, backend).execute({"x": x}).outputs["y"]
        np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_missing_and_corrupt_records_miss(self, tmp_path, graph):
        cache = ArtifactCache(tmp_path)
        compilation = compile_program(graph)
        assert cache.load("no-such-signature") is None
        path = cache.save(compilation)
        path.write_text("{not json")
        assert cache.load(compilation.signature) is None
        assert len(cache) == 0

    def test_lane_variants_are_keyed_separately(self, tmp_path, graph):
        from repro.core.compiler import CompilerOptions

        cache = ArtifactCache(tmp_path)
        base = compile_program(graph)
        variant = compile_program(graph, options=CompilerOptions(lane_width=8))
        cache.save(base)
        cache.save(variant)
        assert len(cache) == 2
        loaded = cache.load(variant.signature, 8)
        assert loaded is not None and loaded.lane_width == 8
        assert cache.load(base.signature) is not None

    def test_registry_loads_what_a_sibling_compiled(self, tmp_path, graph):
        first = ProgramRegistry(artifacts=ArtifactCache(tmp_path))
        compiled = first.get_or_compile(graph)
        # A second registry (= another shard process) loads, not compiles.
        second_cache = ArtifactCache(tmp_path)
        second = ProgramRegistry(artifacts=second_cache)
        loaded = second.get_or_compile(graph)
        assert second_cache.hits == 1
        assert second_cache.stores == 0
        assert loaded.parameters == compiled.parameters
        summary = second.summary()
        assert summary["artifacts"]["hits"] == 1

    def test_concurrent_compile_race_converges(self, tmp_path, graph):
        """Two shards compiling the same signature concurrently: atomic
        writes mean readers never see a torn record, and everyone ends up
        with an equivalent compilation."""
        registries = [
            ProgramRegistry(artifacts=ArtifactCache(tmp_path)) for _ in range(4)
        ]
        barrier = threading.Barrier(len(registries))
        results = [None] * len(registries)
        errors = []

        def compile_worker(slot, registry):
            try:
                barrier.wait(10)
                results[slot] = registry.get_or_compile(graph)
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=compile_worker, args=(i, registry))
            for i, registry in enumerate(registries)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert not errors
        assert all(result is not None for result in results)
        reference = results[0]
        for result in results[1:]:
            assert result.parameters == reference.parameters
            assert sorted(result.rotation_steps) == sorted(reference.rotation_steps)
        # Exactly one record on disk, and it is loadable.
        cache = ArtifactCache(tmp_path)
        assert len(cache) == 1
        assert cache.load(reference.signature) is not None

    def test_concurrent_writes_never_tear_reads(self, tmp_path, graph):
        cache = ArtifactCache(tmp_path)
        compilation = compile_program(graph)
        signature = compilation.signature
        stop = threading.Event()
        torn = []

        def writer():
            while not stop.is_set():
                cache.save(compilation)

        def reader():
            reader_cache = ArtifactCache(tmp_path)
            while not stop.is_set():
                loaded = reader_cache.load(signature)
                if loaded is not None and loaded.signature != signature:
                    torn.append(loaded)  # pragma: no cover - would be a bug

        threads = [threading.Thread(target=writer) for _ in range(2)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        time.sleep(0.4)
        stop.set()
        for thread in threads:
            thread.join(10)
        assert not torn

    def test_prune_removes_old_artifacts(self, tmp_path, graph):
        cache = ArtifactCache(tmp_path)
        compilation = compile_program(graph)
        path = cache.save(compilation)
        record = json.loads(path.read_text())
        record["saved_at"] = time.time() - 1000.0
        path.write_text(json.dumps(record))
        assert cache.prune(max_age=10.0) == 1
        assert cache.load(compilation.signature) is None


class TestLaneWidthPrecompile:
    def test_histogram_records_and_ranks(self):
        hist = WidthHistogram()
        for _ in range(5):
            hist.record("sig", 16)
        for _ in range(2):
            hist.record("sig", 64)
        assert hist.samples("sig") == 7
        assert hist.top("sig", 2) == [16, 64]
        assert hist.top("other", 2) == []

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            LaneWidthPolicy(min_samples=0)
        with pytest.raises(ValueError):
            LaneWidthPolicy(top_widths=0)

    def test_server_prewarms_top_width(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        server = EvaServer(
            backend=MockBackend(error_model="none"),
            batch_window=0.0,
            artifact_cache=cache,
            precompile=LaneWidthPolicy(min_samples=4, top_widths=1),
        )
        program = make_rotation_program(vec_size=64)
        spec = server.register("rot", program)
        narrow = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
        for _ in range(4):
            server.request("rot", {"x": narrow})
        assert server.drain_precompiles(timeout=60)
        stats = server.stats()
        assert stats["precompile"]["enabled"]
        assert [spec.signature[:12], 8] in stats["precompile"]["compiled_widths"]
        # The variant is already in the registry: the first batched round
        # finds it warm (and the artifact is published for sibling shards).
        assert server.registry.get_or_compile_variant(
            spec.program, spec.options, lane_width=8, base_signature=spec.signature
        ) is not None
        variant_records = [r for r in cache.records() if r["lane_width"] == 8]
        assert variant_records
        server.close()


class TestSessionStoreGC:
    @pytest.fixture
    def compilation(self):
        return compile_program(make_poly_program().graph)

    def _age_records(self, store, seconds):
        for path in store.root.glob("*.json"):
            record = json.loads(path.read_text())
            record["saved_at"] = time.time() - seconds
            path.write_text(json.dumps(record))

    def test_prune_removes_only_old_records(self, tmp_path, compilation):
        store = SessionStore(tmp_path)
        store.save("old", compilation, {"scheme": "mock"})
        self._age_records(store, 1000.0)
        store.save("fresh", compilation, {"scheme": "mock"})
        assert store.prune(max_age=100.0) == 1
        assert store.load("old", compilation) is None
        assert store.load("fresh", compilation) is not None

    def test_prune_without_bound_is_a_noop(self, tmp_path, compilation):
        store = SessionStore(tmp_path)
        store.save("alice", compilation, {"scheme": "mock"})
        assert store.prune() == 0
        assert store.load("alice", compilation) is not None

    def test_ttl_expires_reads(self, tmp_path, compilation):
        store = SessionStore(tmp_path, ttl=50.0)
        store.save("alice", compilation, {"scheme": "mock"})
        assert store.load("alice", compilation) is not None
        self._age_records(store, 100.0)
        # Expired records read as missing and are deleted opportunistically.
        assert store.load("alice", compilation) is None
        assert not list(store.root.glob("*.json"))

    def test_ttl_defaults_prune_bound(self, tmp_path, compilation):
        store = SessionStore(tmp_path, ttl=50.0)
        store.save("alice", compilation, {"scheme": "mock"})
        self._age_records(store, 100.0)
        assert store.prune() == 1

    def test_prune_sweeps_corrupt_old_files(self, tmp_path):
        store = SessionStore(tmp_path)
        bad = store.root / "corrupt.json"
        bad.write_text("{not json")
        import os

        old = time.time() - 1000.0
        os.utime(bad, (old, old))
        assert store.prune(max_age=100.0) == 1
        assert not bad.exists()

    def test_invalid_ttl_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            SessionStore(tmp_path, ttl=0.0)


class TestAdminWireMessages:
    def test_shard_ops_roundtrip(self):
        line = messages.encode_request("drain", shard=2)
        decoded = messages.decode_request(line)
        assert decoded["op"] == "drain" and decoded["shard"] == 2
        line = messages.encode_request("rejoin", shard=0)
        assert messages.decode_request(line)["shard"] == 0

    def test_shard_ops_require_shard(self):
        with pytest.raises(SerializationError):
            messages.encode_request("drain")
        with pytest.raises(SerializationError):
            messages.decode_request('{"op": "rejoin"}')
        with pytest.raises(SerializationError):
            messages.decode_request('{"op": "drain", "shard": -1}')
        with pytest.raises(SerializationError):
            messages.decode_request('{"op": "drain", "shard": true}')

    def test_error_encoding_carries_retry_after(self):
        line = messages.encode_error(QuotaExceededError("slow down", retry_after=0.25))
        reply = messages.decode_response(line)
        assert not reply["ok"]
        assert reply["kind"] == "QuotaExceededError"
        assert reply["retry_after"] == pytest.approx(0.25)
        # Ordinary errors stay unchanged.
        reply = messages.decode_response(messages.encode_error(ServingError("x")))
        assert "retry_after" not in reply

    def test_single_server_rejects_cluster_admin_ops(self):
        server = EvaServer(backend=MockBackend(error_model="none"))
        server.register("poly", make_poly_program())
        tcp = EvaTcpServer(server, port=0)
        tcp.start_background()
        host, port = tcp.address
        try:
            with ServingClient(host, port) as client:
                health = client.health()
                assert health[0]["status"] == "live"
                for call in (lambda: client.drain(0), lambda: client.rejoin(0)):
                    with pytest.raises(ServingError, match="cluster operation"):
                        call()
        finally:
            tcp.shutdown()
            server.close()


class TestCliFlags:
    def test_serve_and_cluster_flags_parse(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            [
                "serve", "p.evaproto",
                "--quota-rps", "5", "--quota-burst", "3", "--max-inflight", "4",
                "--session-ttl", "3600", "--artifact-dir", "/tmp/a",
                "--health-interval", "1.5", "--precompile-widths", "2",
            ]
        )
        assert args.quota_rps == 5.0 and args.quota_burst == 3.0
        assert args.max_inflight == 4 and args.session_ttl == 3600.0
        assert args.artifact_dir == "/tmp/a"
        assert args.health_interval == 1.5 and args.precompile_widths == 2
        args = parser.parse_args(["cluster", "rejoin", "--shard", "1", "--port", "9"])
        assert args.action == "rejoin" and args.shard == 1 and args.port == 9

    def test_quota_burst_without_rate_rejected(self):
        from repro.cli import _fairness_policy, build_parser
        from repro.errors import EvaError

        args = build_parser().parse_args(
            ["serve", "p.evaproto", "--quota-burst", "8"]
        )
        with pytest.raises(EvaError, match="--quota-burst requires --quota-rps"):
            _fairness_policy(args)
