"""Property-based tests (hypothesis) for the compiler, IR, and CKKS substrate.

The key invariants checked here:

* **Compiler correctness** — for randomly generated frontend programs, the
  compiled program (with RESCALE/MOD_SWITCH/RELINEARIZE inserted) computes the
  same function as the input program under the identity scheme, and always
  passes validation.
* **Serialization** — proto/JSON round-trips preserve program semantics.
* **Encoder** — CKKS encoding followed by decoding is close to the identity,
  and is additively homomorphic.
* **Mock backend metadata** — arbitrary valid op sequences never violate the
  metadata invariants (scales add on multiply, levels increase on rescale).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.backend import MockBackend
from repro.core import CompilerOptions, Executor, compile_program, execute_reference
from repro.core.analysis import validate
from repro.core.ir import Program
from repro.core.serialization import json_format, proto
from repro.core.types import Op, ValueType
from repro.errors import EvaError
from repro.frontend import EvaProgram

# ---------------------------------------------------------------------------
# Random frontend program generation
# ---------------------------------------------------------------------------

VEC_SIZE = 8


@st.composite
def frontend_programs(draw):
    """Generate a random frontend program with 1-2 encrypted inputs."""
    num_inputs = draw(st.integers(1, 2))
    program = Program("random", vec_size=VEC_SIZE)
    pool = []
    for index in range(num_inputs):
        pool.append(program.input(f"x{index}", ValueType.CIPHER, scale=25))
    pool.append(program.constant(draw(st.floats(-1.5, 1.5)), scale=10))
    pool.append(
        program.constant(
            np.asarray(draw(st.lists(st.floats(-1, 1), min_size=VEC_SIZE, max_size=VEC_SIZE))),
            scale=15,
        )
    )
    num_ops = draw(st.integers(2, 10))
    for _ in range(num_ops):
        op = draw(st.sampled_from([Op.ADD, Op.SUB, Op.MULTIPLY, Op.NEGATE, Op.ROTATE_LEFT, Op.ROTATE_RIGHT]))
        if op in (Op.ADD, Op.SUB, Op.MULTIPLY):
            a = draw(st.sampled_from(pool))
            b = draw(st.sampled_from(pool))
            if a.value_type is not ValueType.CIPHER and b.value_type is not ValueType.CIPHER:
                continue
            term = program.make_term(op, [a, b])
        elif op is Op.NEGATE:
            a = draw(st.sampled_from(pool))
            if a.value_type is not ValueType.CIPHER:
                continue
            term = program.make_term(op, [a])
        else:
            a = draw(st.sampled_from(pool))
            if a.value_type is not ValueType.CIPHER:
                continue
            term = program.make_term(op, [a], rotation=draw(st.integers(1, VEC_SIZE - 1)))
        pool.append(term)
    cipher_terms = [t for t in pool if t.value_type is ValueType.CIPHER and t.is_instruction]
    if not cipher_terms:
        x = program.inputs["x0"]
        cipher_terms = [program.make_term(Op.MULTIPLY, [x, x])]
    program.set_output("out", cipher_terms[-1], scale=25)
    inputs = {
        f"x{i}": np.asarray(
            draw(st.lists(st.floats(-1, 1), min_size=VEC_SIZE, max_size=VEC_SIZE))
        )
        for i in range(num_inputs)
    }
    return program, inputs


@settings(max_examples=40, deadline=None)
@given(frontend_programs())
def test_compiled_program_preserves_semantics(case):
    program, inputs = case
    # Multiplicative depth can make parameter selection exceed the security
    # table for extreme random programs; those raise a clean EvaError.
    try:
        result = compile_program(program, options=CompilerOptions())
    except EvaError:
        assume(False)
        return
    validate(result.program, max_rescale_bits=60)
    reference = execute_reference(program, inputs)["out"]
    compiled_reference = execute_reference(result.program, inputs)["out"]
    np.testing.assert_allclose(compiled_reference, reference, rtol=1e-9, atol=1e-9)
    backend_out = Executor(result, MockBackend(error_model="none")).execute(inputs)["out"]
    np.testing.assert_allclose(backend_out, reference, rtol=1e-7, atol=1e-7)


@settings(max_examples=40, deadline=None)
@given(frontend_programs())
def test_compiled_program_always_validates(case):
    program, _ = case
    try:
        result = compile_program(program, options=CompilerOptions())
    except EvaError:
        assume(False)
        return
    validate(result.program, max_rescale_bits=60)
    assert result.parameters.modulus_count >= 2
    assert result.parameters.coeff_modulus_bits[-1] == 60


@settings(max_examples=30, deadline=None)
@given(frontend_programs())
def test_serialization_roundtrip_preserves_semantics(case):
    program, inputs = case
    reference = execute_reference(program, inputs)["out"]
    for restored in (
        proto.deserialize(proto.serialize(program)),
        json_format.loads(json_format.dumps(program)),
    ):
        np.testing.assert_allclose(
            execute_reference(restored, inputs)["out"], reference, rtol=1e-9, atol=1e-9
        )


# ---------------------------------------------------------------------------
# PyEVA expression properties
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(-1, 1), min_size=8, max_size=8),
    st.integers(1, 7),
    st.integers(1, 6),
)
def test_rotation_composition(values, step_a, step_b):
    """Rotating by a then b equals rotating by (a+b) mod vec_size."""
    program = EvaProgram("rot", vec_size=8, default_scale=25)
    with program:
        x = program.input_encrypted("x", 25)
        program.output("composed", ((x << step_a) << step_b) * 1.0, 25)
        program.output("direct", (x << ((step_a + step_b) % 8)) * 1.0, 25)
    out = execute_reference(program.graph, {"x": np.asarray(values)})
    np.testing.assert_allclose(out["composed"], out["direct"], rtol=1e-12, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-1, 1), min_size=8, max_size=8), st.integers(2, 6))
def test_power_matches_repeated_multiplication(values, exponent):
    program = EvaProgram("pow", vec_size=8, default_scale=25)
    with program:
        x = program.input_encrypted("x", 25)
        program.output("power", x**exponent, 25)
    out = execute_reference(program.graph, {"x": np.asarray(values)})["power"]
    np.testing.assert_allclose(out, np.asarray(values) ** exponent, rtol=1e-9, atol=1e-9)


# ---------------------------------------------------------------------------
# CKKS encoder properties
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def encoder():
    from repro.ckks.encoder import CkksEncoder

    return CkksEncoder(512)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.large_base_example])
@given(st.lists(st.floats(-1, 1), min_size=256, max_size=256))
def test_encoder_roundtrip_property(encoder, values):
    scale = 2.0**24
    decoded = encoder.decode_real(encoder.encode(np.asarray(values), scale), scale)
    np.testing.assert_allclose(decoded, values, atol=1e-3)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.large_base_example])
@given(
    st.lists(st.floats(-1, 1), min_size=256, max_size=256),
    st.lists(st.floats(-1, 1), min_size=256, max_size=256),
)
def test_encoder_additivity_property(encoder, a, b):
    scale = 2.0**24
    a, b = np.asarray(a), np.asarray(b)
    summed = encoder.encode(a, scale) + encoder.encode(b, scale)
    np.testing.assert_allclose(encoder.decode_real(summed, scale), a + b, atol=1e-2)


# ---------------------------------------------------------------------------
# Mock backend metadata properties
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from(["multiply", "rotate", "add", "rescale", "mod_switch"]), min_size=1, max_size=8))
def test_mock_backend_metadata_invariants(ops):
    from repro.core.analysis.parameters import EncryptionParameters

    params = EncryptionParameters(2048, [30] * 8)
    context = MockBackend(error_model="none").create_context(params)
    context.generate_keys()
    cipher = context.encrypt(np.ones(4), 25)
    level, scale = 0, 25.0
    for op in ops:
        try:
            if op == "multiply":
                other = context.encrypt(np.ones(4), 25)
                for _ in range(level):
                    other = context.mod_switch(other)
                cipher = context.relinearize(context.multiply(cipher, other))
                scale += 25.0
            elif op == "rotate":
                cipher = context.rotate(cipher, 1)
            elif op == "add":
                other = context.encrypt(np.ones(4), scale)
                for _ in range(level):
                    other = context.mod_switch(other)
                cipher = context.add(cipher, other)
            elif op == "rescale":
                cipher = context.rescale(cipher, 30)
                scale -= 30.0
                level += 1
            elif op == "mod_switch":
                cipher = context.mod_switch(cipher)
                level += 1
        except EvaError:
            # Running out of modulus or scale is legal behaviour; stop here.
            break
        assert context.level(cipher) == level
        assert context.scale_bits(cipher) == pytest.approx(scale)
