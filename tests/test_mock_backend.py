"""Tests for the metadata-exact mock CKKS backend (constraint enforcement)."""

import numpy as np
import pytest

from repro.backend import MockBackend
from repro.core.analysis.parameters import EncryptionParameters
from repro.errors import (
    LevelMismatchError,
    ModulusExhaustedError,
    PolynomialCountError,
    ScaleMismatchError,
)


@pytest.fixture
def context():
    params = EncryptionParameters(
        poly_modulus_degree=2048,
        coeff_modulus_bits=[30, 30, 30, 30],
        rotation_steps=[1, 2],
    )
    ctx = MockBackend(error_model="none").create_context(params)
    ctx.generate_keys()
    return ctx


class TestMockCiphertextMetadata:
    def test_encrypt_decrypt_roundtrip(self, context):
        values = np.linspace(-1, 1, context.slot_count)
        cipher = context.encrypt(values, 25)
        np.testing.assert_allclose(context.decrypt(cipher), values)

    def test_replication_of_short_inputs(self, context):
        cipher = context.encrypt([1.0, 2.0], 25)
        decoded = context.decrypt(cipher)
        assert decoded.shape == (context.slot_count,)
        np.testing.assert_allclose(decoded[:4], [1.0, 2.0, 1.0, 2.0])

    def test_multiply_scales_add(self, context):
        a = context.encrypt(np.ones(4), 25)
        b = context.encrypt(np.ones(4), 20)
        product = context.multiply(a, b)
        assert context.scale_bits(product) == 45
        assert product.num_polys == 3

    def test_relinearize_restores_two_polys(self, context):
        a = context.encrypt(np.ones(4), 25)
        product = context.multiply(a, a)
        assert context.relinearize(product).num_polys == 2

    def test_rescale_consumes_level_and_scale(self, context):
        a = context.encrypt(np.ones(4), 25)
        b = context.multiply(a, a)
        rescaled = context.rescale(b, 30)
        assert context.level(rescaled) == 1
        assert context.scale_bits(rescaled) == 20

    def test_mod_switch_keeps_scale(self, context):
        a = context.encrypt(np.ones(4), 25)
        switched = context.mod_switch(a)
        assert context.level(switched) == 1
        assert context.scale_bits(switched) == 25

    def test_rotation(self, context):
        values = np.arange(context.slot_count, dtype=float)
        cipher = context.encrypt(values, 25)
        rotated = context.rotate(cipher, 3)
        np.testing.assert_allclose(context.decrypt(rotated), np.roll(values, -3))


class TestMockConstraintEnforcement:
    def test_add_level_mismatch_raises(self, context):
        a = context.encrypt(np.ones(4), 25)
        b = context.mod_switch(context.encrypt(np.ones(4), 25))
        with pytest.raises(LevelMismatchError):
            context.add(a, b)

    def test_add_scale_mismatch_raises(self, context):
        a = context.encrypt(np.ones(4), 25)
        b = context.encrypt(np.ones(4), 20)
        with pytest.raises(ScaleMismatchError):
            context.add(a, b)

    def test_add_plain_scale_mismatch_raises(self, context):
        a = context.encrypt(np.ones(4), 25)
        plain = context.encode(np.ones(4), 15)
        with pytest.raises(ScaleMismatchError):
            context.add_plain(a, plain)

    def test_multiply_without_relinearization_raises(self, context):
        a = context.encrypt(np.ones(4), 10)
        three_polys = context.multiply(a, a)
        with pytest.raises(PolynomialCountError):
            context.multiply(three_polys, a)

    def test_multiply_overflowing_modulus_raises(self, context):
        a = context.encrypt(np.ones(4), 60)
        b = context.encrypt(np.ones(4), 65)
        with pytest.raises(ModulusExhaustedError):
            context.multiply(a, b)

    def test_rescale_on_last_level_raises(self, context):
        a = context.encrypt(np.ones(4), 25)
        for _ in range(2):
            a = context.mod_switch(a)
        with pytest.raises(ModulusExhaustedError):
            context.rescale(a, 30)

    def test_mod_switch_on_last_level_raises(self, context):
        a = context.encrypt(np.ones(4), 25)
        for _ in range(2):
            a = context.mod_switch(a)
        with pytest.raises(ModulusExhaustedError):
            context.mod_switch(a)

    def test_rescale_with_wrong_divisor_raises(self, context):
        a = context.encrypt(np.ones(4), 50)
        with pytest.raises(ModulusExhaustedError):
            context.rescale(a, 20)

    def test_release_tracks_live_count(self, context):
        a = context.encrypt(np.ones(4), 25)
        b = context.encrypt(np.ones(4), 25)
        assert context.live_ciphertexts == 2
        context.release(a)
        assert context.live_ciphertexts == 1
        context.release(a)  # double release is a no-op
        assert context.live_ciphertexts == 1
        context.release(b)
        assert context.live_ciphertexts == 0

    def test_error_model_validation(self):
        with pytest.raises(ValueError):
            MockBackend(error_model="bogus").create_context(
                EncryptionParameters(2048, [30, 30])
            )

    def test_gaussian_noise_is_small(self):
        params = EncryptionParameters(4096, [30, 30, 30])
        ctx = MockBackend(error_model="gaussian", seed=0).create_context(params)
        ctx.generate_keys()
        values = np.linspace(-1, 1, ctx.slot_count)
        decoded = ctx.decrypt(ctx.encrypt(values, 30))
        assert np.max(np.abs(decoded - values)) < 1e-6
