"""Tests for the compiler driver (Algorithm 1) and its policy profiles."""

import numpy as np
import pytest

from repro.core import CompilerOptions, compile_program, execute_reference
from repro.core.analysis import validate
from repro.core.ir import Program
from repro.core.types import Op, ValueType
from repro.errors import CompilationError
from repro.frontend import EvaProgram, input_encrypted, output


class TestCompilerDriver:
    def test_compiled_program_validates(self, x2y3_program):
        result = compile_program(x2y3_program)
        validate(result.program, max_rescale_bits=60)

    def test_original_program_not_mutated(self, x2y3_program):
        terms_before = len(x2y3_program)
        compile_program(x2y3_program)
        assert len(x2y3_program) == terms_before

    def test_fhe_ops_rejected_in_input(self):
        program = Program("bad", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=30)
        program.set_output("out", program.make_term(Op.RESCALE, [x], rescale_value=30.0))
        with pytest.raises(CompilationError):
            compile_program(program)

    def test_unknown_policy_rejected(self):
        with pytest.raises(CompilationError):
            CompilerOptions(policy="nonsense")

    def test_unknown_input_scale_rejected(self, x2y3_program):
        with pytest.raises(CompilationError):
            compile_program(x2y3_program, input_scales={"nope": 30})

    def test_unknown_output_scale_rejected(self, x2y3_program):
        with pytest.raises(CompilationError):
            compile_program(x2y3_program, output_scales={"nope": 30})

    def test_input_scales_override(self, x2y3_program):
        result = compile_program(x2y3_program, input_scales={"x": 40, "y": 40})
        assert result.input_scales == {"x": 40.0, "y": 40.0}

    def test_pass_reports_recorded(self, x2y3_program):
        result = compile_program(x2y3_program)
        names = [r.name for r in result.pass_reports]
        assert "waterline-rescale" in names
        assert "eager-modswitch" in names
        assert "match-scale" in names
        assert "relinearize" in names

    def test_summary_contents(self, x2y3_program):
        summary = compile_program(x2y3_program).summary()
        assert summary["policy"] == "eva"
        assert summary["r"] >= 2
        assert summary["compile_seconds"] > 0

    def test_chet_policy_uses_different_passes(self, x2_plus_x_program):
        result = compile_program(x2_plus_x_program, options=CompilerOptions(policy="chet"))
        names = [r.name for r in result.pass_reports]
        assert "chet-kernel-alignment" in names
        assert "lazy-modswitch" in names
        assert "eager-modswitch" not in names

    def test_x2y3_matches_paper_chain_structure(self, x2y3_program):
        # Figure 2(d)/(e): output rescale chain of length 2 with 60-bit values,
        # final output scale 2^90, so r = 1 + 2 + ceil((90 + 30)/60) = 5.
        result = compile_program(x2y3_program, output_scales={"out": 30})
        assert result.parameters.modulus_count == 5
        assert result.parameters.coeff_modulus_bits.count(60) >= 3


class TestPolicyComparison:
    """The EVA policy should never be worse than the CHET baseline (Table 6 shape)."""

    def _program(self):
        program = EvaProgram("cmp", vec_size=64, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            w = program.constant(np.linspace(-1, 1, 64).tolist(), 15)
            y = (x * w) * (x * w) + x
            z = y * y + (x << 3)
            output("z", z, 25)
        return program

    def test_eva_modulus_not_longer_than_chet(self):
        # The paper's optimality claim is about the modulus-chain length r
        # (Section 5.3); for very shallow programs the 60-bit rescale policy
        # can use more total bits than the baseline, so only r is compared.
        program = self._program()
        eva = program.compile(options=CompilerOptions(policy="eva"))
        chet = program.compile(options=CompilerOptions(policy="chet"))
        assert eva.parameters.modulus_count <= chet.parameters.modulus_count

    def test_both_policies_produce_equivalent_results(self, noiseless_backend):
        from repro.core import Executor

        program = self._program()
        xv = np.linspace(-0.9, 0.9, 64)
        reference = execute_reference(program.graph, {"x": xv})["z"]
        for policy in ("eva", "chet"):
            compiled = program.compile(options=CompilerOptions(policy=policy))
            result = Executor(compiled, noiseless_backend).execute({"x": xv})
            np.testing.assert_allclose(result["z"], reference, rtol=1e-9, atol=1e-9)


class TestRescaleBitOptions:
    def test_smaller_max_rescale_produces_smaller_primes(self, x2y3_program):
        result = compile_program(
            x2y3_program,
            input_scales={"x": 25, "y": 25},
            options=CompilerOptions(max_rescale_bits=25),
        )
        assert all(bits <= 25 for bits in result.parameters.coeff_modulus_bits)

    def test_cleanup_passes_can_be_disabled(self, x2y3_program):
        result = compile_program(
            x2y3_program, options=CompilerOptions(cleanup=False, lower_sum=False)
        )
        names = [r.name for r in result.pass_reports]
        assert "cse" not in names
        assert "expand-sum" not in names


class TestCseAndFolding:
    def test_cse_merges_duplicate_rotations(self):
        program = EvaProgram("dup", vec_size=16, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            a = (x << 2) * 0.5
            b = (x << 2) * 0.25
            output("out", a + b, 25)
        compiled = program.compile()
        rotations = [t for t in compiled.program.terms() if t.op is Op.ROTATE_LEFT]
        assert len(rotations) == 1

    def test_constant_folding_removes_plain_subgraphs(self):
        program = Program("fold", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=25)
        c1 = program.constant([1.0] * 8, scale=15)
        c2 = program.constant([2.0] * 8, scale=15)
        summed = program.make_term(Op.ADD, [c1, c2])
        product = program.make_term(Op.MULTIPLY, [x, summed])
        program.set_output("out", product, scale=25)
        compiled = compile_program(program)
        plain_instructions = [
            t
            for t in compiled.program.terms()
            if t.is_instruction and t.value_type is not ValueType.CIPHER
        ]
        assert plain_instructions == []
