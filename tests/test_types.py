"""Unit tests for the opcode and type enumerations."""

import pytest

from repro.core.types import (
    ObjectType,
    Op,
    ValueType,
    is_power_of_two,
    object_type_for,
    result_type,
    value_type_for,
)


class TestOp:
    def test_fhe_specific_ops_are_not_frontend_ops(self):
        for op in (Op.RELINEARIZE, Op.MOD_SWITCH, Op.RESCALE, Op.NORMALIZE_SCALE):
            assert op.is_fhe_specific
            assert not op.is_frontend

    def test_frontend_ops(self):
        for op in (Op.NEGATE, Op.ADD, Op.SUB, Op.MULTIPLY, Op.ROTATE_LEFT, Op.ROTATE_RIGHT, Op.SUM):
            assert op.is_frontend
            assert op.is_instruction

    def test_roots_are_not_instructions(self):
        assert not Op.INPUT.is_instruction
        assert not Op.CONSTANT.is_instruction

    def test_rotation_classification(self):
        assert Op.ROTATE_LEFT.is_rotation
        assert Op.ROTATE_RIGHT.is_rotation
        assert not Op.ADD.is_rotation

    def test_additive_and_binary(self):
        assert Op.ADD.is_additive and Op.SUB.is_additive
        assert not Op.MULTIPLY.is_additive
        assert Op.MULTIPLY.is_binary_arith

    def test_modulus_changing_ops(self):
        assert Op.RESCALE.changes_modulus
        assert Op.MOD_SWITCH.changes_modulus
        assert not Op.RELINEARIZE.changes_modulus

    def test_opcode_values_match_proto_schema(self):
        # Field numbers from Figure 1 of the paper.
        assert Op.NEGATE == 1
        assert Op.ADD == 2
        assert Op.SUB == 3
        assert Op.MULTIPLY == 4
        assert Op.SUM == 5
        assert Op.COPY == 6
        assert Op.ROTATE_LEFT == 7
        assert Op.ROTATE_RIGHT == 8
        assert Op.RELINEARIZE == 9
        assert Op.MOD_SWITCH == 10
        assert Op.RESCALE == 11


class TestValueType:
    def test_cipher_is_encrypted(self):
        assert ValueType.CIPHER.is_encrypted
        assert not ValueType.VECTOR.is_encrypted

    def test_vector_types(self):
        assert ValueType.CIPHER.is_vector
        assert ValueType.VECTOR.is_vector
        assert not ValueType.SCALAR.is_vector

    @pytest.mark.parametrize(
        "types,expected",
        [
            ([ValueType.CIPHER, ValueType.VECTOR], ValueType.CIPHER),
            ([ValueType.VECTOR, ValueType.SCALAR], ValueType.VECTOR),
            ([ValueType.CIPHER, ValueType.CIPHER], ValueType.CIPHER),
        ],
    )
    def test_result_type(self, types, expected):
        assert result_type(Op.ADD, types) is expected


class TestObjectTypeMapping:
    @pytest.mark.parametrize(
        "value_type,is_constant,expected",
        [
            (ValueType.CIPHER, False, ObjectType.VECTOR_CIPHER),
            (ValueType.VECTOR, True, ObjectType.VECTOR_CONST),
            (ValueType.VECTOR, False, ObjectType.VECTOR_PLAIN),
            (ValueType.SCALAR, True, ObjectType.SCALAR_CONST),
        ],
    )
    def test_object_type_for(self, value_type, is_constant, expected):
        assert object_type_for(value_type, is_constant) is expected

    @pytest.mark.parametrize(
        "object_type,expected",
        [
            (ObjectType.VECTOR_CIPHER, ValueType.CIPHER),
            (ObjectType.VECTOR_CONST, ValueType.VECTOR),
            (ObjectType.SCALAR_PLAIN, ValueType.SCALAR),
        ],
    )
    def test_value_type_for(self, object_type, expected):
        assert value_type_for(object_type) is expected

    def test_round_trip(self):
        for value_type in (ValueType.CIPHER, ValueType.VECTOR):
            assert value_type_for(object_type_for(value_type, False)) is value_type


class TestPowerOfTwo:
    @pytest.mark.parametrize("n", [1, 2, 4, 1024, 65536])
    def test_powers(self, n):
        assert is_power_of_two(n)

    @pytest.mark.parametrize("n", [0, -2, 3, 6, 1000])
    def test_non_powers(self, n):
        assert not is_power_of_two(n)
