"""Tests for program serialization (proto3 wire format and JSON)."""

import numpy as np
import pytest

from repro.core.serialization import json_format, load, proto, save
from repro.core.serialization.wire import (
    decode_varint,
    encode_varint,
    encode_varint_field,
    iter_fields,
    unpack_doubles,
)
from repro.core import compile_program, execute_reference
from repro.core.ir import Program
from repro.core.types import Op, ValueType
from repro.errors import SerializationError
from repro.frontend import EvaProgram, input_encrypted, output


def make_rich_program() -> Program:
    program = Program("rich", vec_size=16)
    x = program.input("x", ValueType.CIPHER, scale=30)
    mask = program.constant(np.linspace(0, 1, 16), scale=15)
    k = program.constant(0.5, scale=10)
    rotated = program.make_term(Op.ROTATE_LEFT, [x], rotation=3)
    masked = program.make_term(Op.MULTIPLY, [rotated, mask])
    shifted = program.make_term(Op.ROTATE_RIGHT, [masked], rotation=2)
    scaled = program.make_term(Op.MULTIPLY, [shifted, k])
    total = program.make_term(Op.ADD, [scaled, x])
    program.set_output("out", total, scale=30)
    return program


class TestVarints:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**63])
    def test_roundtrip(self, value):
        data = encode_varint(value)
        decoded, offset = decode_varint(data, 0)
        assert decoded == value
        assert offset == len(data)

    def test_negative_rejected(self):
        with pytest.raises(SerializationError):
            encode_varint(-1)

    def test_truncated_varint_rejected(self):
        with pytest.raises(SerializationError):
            decode_varint(b"\x80", 0)

    def test_iter_fields_skips_unknown_fields(self):
        payload = encode_varint_field(99, 7) + encode_varint_field(1, 42)
        fields = {number: value for number, _, value in iter_fields(payload)}
        assert fields[1] == 42
        assert fields[99] == 7

    def test_unpack_doubles_validates_length(self):
        with pytest.raises(SerializationError):
            unpack_doubles(b"\x00" * 7)


class TestProtoRoundTrip:
    def test_structure_preserved(self):
        program = make_rich_program()
        restored = proto.deserialize(proto.serialize(program))
        assert restored.vec_size == program.vec_size
        assert list(restored.outputs) == ["out"]
        assert restored.op_counts()[Op.MULTIPLY] == program.op_counts()[Op.MULTIPLY]
        assert restored.op_counts()[Op.ROTATE_LEFT] == 1
        assert restored.op_counts()[Op.ROTATE_RIGHT] == 1

    def test_semantics_preserved(self):
        program = make_rich_program()
        restored = proto.deserialize(proto.serialize(program))
        inputs = {"x": np.linspace(-1, 1, 16)}
        np.testing.assert_allclose(
            execute_reference(restored, inputs)["out"],
            execute_reference(program, inputs)["out"],
        )

    def test_rotation_attributes_preserved(self):
        program = make_rich_program()
        restored = proto.deserialize(proto.serialize(program))
        rotations = sorted(
            t.rotation for t in restored.terms() if t.op.is_rotation
        )
        assert rotations == [2, 3]

    def test_input_scales_preserved(self):
        program = make_rich_program()
        restored = proto.deserialize(proto.serialize(program))
        assert restored.inputs["x"].scale == 30

    def test_compiled_program_roundtrip(self, x2y3_program):
        compiled = compile_program(x2y3_program).program
        restored = proto.deserialize(proto.serialize(compiled))
        assert restored.op_counts()[Op.RESCALE] == compiled.op_counts()[Op.RESCALE]
        rescale_values = sorted(
            t.rescale_value for t in restored.terms() if t.op is Op.RESCALE
        )
        assert all(v == 60.0 for v in rescale_values)

    def test_malformed_bytes_rejected(self):
        with pytest.raises(SerializationError):
            proto.deserialize(b"")  # no vec_size

    def test_missing_argument_reference_rejected(self):
        message = proto.ProgramMessage(vec_size=8)
        message.instructions.append(proto.InstructionMessage(5, Op.NEGATE, [99]))
        message.outputs.append(proto.OutputMessage(5, 30.0, "out"))
        with pytest.raises(SerializationError):
            proto.message_to_program(message)


class TestJsonRoundTrip:
    def test_roundtrip_semantics(self):
        program = make_rich_program()
        restored = json_format.loads(json_format.dumps(program))
        inputs = {"x": np.linspace(-1, 1, 16)}
        np.testing.assert_allclose(
            execute_reference(restored, inputs)["out"],
            execute_reference(program, inputs)["out"],
        )

    def test_kernel_labels_preserved(self):
        program = EvaProgram("k", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            with program.kernel("layer1"):
                y = x * x
            output("y", y, 25)
        restored = json_format.loads(json_format.dumps(program.graph))
        kernels = {t.kernel for t in restored.terms() if t.is_instruction}
        assert "layer1" in kernels

    def test_malformed_dict_rejected(self):
        with pytest.raises(SerializationError):
            json_format.dict_to_program({"nodes": []})


class TestFileIO:
    def test_save_and_load_binary(self, tmp_path):
        program = make_rich_program()
        path = tmp_path / "program.evaproto"
        save(program, path)
        restored = load(path)
        assert restored.vec_size == 16

    def test_save_and_load_json(self, tmp_path):
        program = make_rich_program()
        path = tmp_path / "program.json"
        save(program, path)
        restored = load(path)
        assert list(restored.outputs) == ["out"]

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load(tmp_path / "missing.evaproto")


class TestBase64Packing:
    """The base64 array packing behind the cipher/key JSON codecs."""

    def test_int_roundtrip_fidelity(self):
        from repro.core.serialization import packing

        rng = np.random.default_rng(0)
        for shape in [(7,), (3, 8), (2, 1, 5)]:
            array = rng.integers(0, 2**30, size=shape, dtype=np.int64)
            wire = packing.pack_residues(array)
            restored = packing.unpack_residues(wire)
            assert restored.dtype == np.int64
            np.testing.assert_array_equal(restored, array)

    def test_float_roundtrip_fidelity(self):
        from repro.core.serialization import packing

        values = np.random.default_rng(1).normal(size=33)
        restored = packing.unpack_values(packing.pack_values(values))
        np.testing.assert_array_equal(restored, values)  # bit-exact

    def test_minimal_width_selection(self):
        from repro.core.serialization import packing

        assert packing.pack_array([0, 255], dtype=np.int64)["dtype"] == "u1"
        assert packing.pack_array([0, 65535], dtype=np.int64)["dtype"] == "u2"
        assert packing.pack_array([0, 2**30], dtype=np.int64)["dtype"] == "u4"
        assert packing.pack_array([0, 2**40], dtype=np.int64)["dtype"] == "i8"
        assert packing.pack_array([-1, 5], dtype=np.int64)["dtype"] == "i8"

    def test_legacy_lists_still_decode(self):
        from repro.core.serialization import packing

        np.testing.assert_array_equal(
            packing.unpack_residues([[1, 2], [3, 4]]), np.array([[1, 2], [3, 4]])
        )
        np.testing.assert_array_equal(
            packing.unpack_values([1.5, 2.5]), np.array([1.5, 2.5])
        )

    def test_malformed_payloads_rejected(self):
        from repro.core.serialization import packing

        with pytest.raises(SerializationError):
            packing.unpack_array({"b64": "!!!not base64!!!", "dtype": "i8"})
        with pytest.raises(SerializationError):
            packing.unpack_array({"b64": "AAAA", "dtype": "nope"})
        with pytest.raises(SerializationError):
            # 3 bytes of payload cannot be a [4] u1... declared as i8 shape [4]
            packing.unpack_array({"b64": "AAAA", "dtype": "i8", "shape": [4]})

    def test_mock_cipher_codec_packs_and_accepts_legacy(self):
        import json

        from repro.backend import MockBackend
        from repro.core import compile_program as _compile
        from repro.frontend import EvaProgram as _EvaProgram

        program = _EvaProgram("p", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("y", x * x, 25)
        compilation = _compile(program.graph)
        context = MockBackend(error_model="none").create_context(compilation.parameters)
        context.generate_keys()
        handle = context.encrypt(np.linspace(-1, 1, 8), 25)
        wire = json.loads(json.dumps(context.encode_cipher(handle)))
        assert "b64" in wire["values"]
        restored = context.decode_cipher(wire)
        np.testing.assert_array_equal(restored.values, handle.values)
        # Legacy wire format (plain float list) still decodes.
        legacy = dict(wire)
        legacy["values"] = [float(v) for v in handle.values]
        np.testing.assert_array_equal(
            context.decode_cipher(legacy).values, handle.values
        )

    def test_ckks_key_blob_smaller_than_legacy(self):
        import json

        from repro.backend import CkksBackend
        from repro.core import CompilerOptions as _Options
        from repro.core import compile_program as _compile
        from repro.core.serialization import packing
        from repro.frontend import EvaProgram as _EvaProgram

        program = _EvaProgram("p", vec_size=8, default_scale=20)
        with program:
            x = input_encrypted("x", 20)
            output("y", (x << 1) * x, 20)
        compilation = _compile(program.graph, options=_Options(max_rescale_bits=25))
        backend = CkksBackend(seed=0, enforce_security=False)
        context = backend.create_context(compilation.parameters)
        context.generate_keys()
        blob = context.export_evaluation_keys()
        packed_size = len(json.dumps(blob))

        def as_legacy(obj):
            if isinstance(obj, dict) and "b64" in obj:
                return packing.unpack_residues(obj).tolist()
            if isinstance(obj, dict):
                return {k: as_legacy(v) for k, v in obj.items()}
            if isinstance(obj, list):
                return [as_legacy(v) for v in obj]
            return obj

        legacy_size = len(json.dumps(as_legacy(blob)))
        assert packed_size < 0.7 * legacy_size
        # Fidelity: a fresh context imports the packed blob and cannot decrypt.
        fresh = backend.create_context(compilation.parameters)
        fresh.import_evaluation_keys(json.loads(json.dumps(blob)))
        assert fresh.has_secret_key is False
