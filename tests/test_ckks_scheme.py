"""Tests for the RNS polynomial layer, the encoder, and the full CKKS scheme."""

import numpy as np
import pytest

from repro.ckks import (
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
)
from repro.ckks.encoder import CkksEncoder
from repro.ckks.numth import generate_ntt_primes
from repro.ckks.rns import RnsBasis, RnsPolynomial
from repro.errors import (
    EncodingError,
    LevelMismatchError,
    ModulusExhaustedError,
    ParameterError,
    PolynomialCountError,
    ScaleMismatchError,
    SecurityError,
)

N = 1024
SCALE = 2.0**24


@pytest.fixture(scope="module")
def ckks():
    """A small CKKS instance shared by the scheme tests (module scoped for speed)."""
    context = CkksContext(N, [26, 26, 26, 30], enforce_security=False)
    keygen = KeyGenerator(context, seed=42)
    public_key = keygen.create_public_key()
    relin_key = keygen.create_relin_key()
    galois_keys = keygen.create_galois_keys([1, 2, 5])
    encryptor = Encryptor(context, public_key, seed=43)
    decryptor = Decryptor(context, keygen.secret_key)
    evaluator = Evaluator(context, relin_key, galois_keys)
    return context, encryptor, decryptor, evaluator


def random_vector(context, seed=0, magnitude=1.0):
    rng = np.random.default_rng(seed)
    return rng.uniform(-magnitude, magnitude, context.slots)


class TestRnsPolynomial:
    @pytest.fixture
    def basis(self):
        return RnsBasis(generate_ntt_primes([26, 26], N), N)

    def test_add_sub_roundtrip(self, basis):
        rng = np.random.default_rng(0)
        a = RnsPolynomial.from_int64_coefficients(basis, rng.integers(-100, 100, N))
        b = RnsPolynomial.from_int64_coefficients(basis, rng.integers(-100, 100, N))
        np.testing.assert_array_equal(a.add(b).sub(b).residues, a.residues)

    def test_negate_is_additive_inverse(self, basis):
        rng = np.random.default_rng(1)
        a = RnsPolynomial.from_int64_coefficients(basis, rng.integers(-100, 100, N))
        zero = a.add(a.negate())
        assert not np.any(zero.residues)

    def test_crt_composition_recovers_coefficients(self, basis):
        coeffs = np.array([5, -7, 123456] + [0] * (N - 3), dtype=np.int64)
        poly = RnsPolynomial.from_int64_coefficients(basis, coeffs)
        recovered = poly.to_int_coefficients()
        assert recovered[:3] == [5, -7, 123456]

    def test_basis_mismatch_rejected(self, basis):
        other = RnsBasis(generate_ntt_primes([26], N), N)
        a = RnsPolynomial.zero(basis)
        b = RnsPolynomial.zero(other)
        with pytest.raises(ParameterError):
            a.add(b)

    def test_drop_last_reduces_basis(self, basis):
        a = RnsPolynomial.zero(basis)
        assert len(a.drop_last().basis) == 1

    def test_automorphism_identity(self, basis):
        rng = np.random.default_rng(2)
        a = RnsPolynomial.from_int64_coefficients(basis, rng.integers(0, 100, N))
        np.testing.assert_array_equal(a.automorphism(1).residues, a.residues)


class TestEncoder:
    def test_encode_decode_roundtrip(self):
        encoder = CkksEncoder(N)
        values = np.random.default_rng(0).uniform(-1, 1, encoder.slots)
        decoded = encoder.decode_real(encoder.encode(values, SCALE), SCALE)
        np.testing.assert_allclose(decoded, values, atol=1e-4)

    def test_scalar_broadcast(self):
        encoder = CkksEncoder(N)
        decoded = encoder.decode_real(encoder.encode(0.75, SCALE), SCALE)
        np.testing.assert_allclose(decoded, 0.75, atol=1e-4)

    def test_short_vector_replication(self):
        encoder = CkksEncoder(N)
        decoded = encoder.decode_real(encoder.encode([1.0, -1.0], SCALE), SCALE)
        np.testing.assert_allclose(decoded[:4], [1.0, -1.0, 1.0, -1.0], atol=1e-4)

    def test_additive_homomorphism_of_encoding(self):
        encoder = CkksEncoder(N)
        a = np.random.default_rng(1).uniform(-1, 1, encoder.slots)
        b = np.random.default_rng(2).uniform(-1, 1, encoder.slots)
        summed = encoder.encode(a, SCALE) + encoder.encode(b, SCALE)
        np.testing.assert_allclose(encoder.decode_real(summed, SCALE), a + b, atol=1e-3)

    def test_oversized_input_rejected(self):
        encoder = CkksEncoder(N)
        with pytest.raises(EncodingError):
            encoder.encode(np.ones(encoder.slots * 2), SCALE)

    def test_non_dividing_length_rejected(self):
        encoder = CkksEncoder(N)
        with pytest.raises(EncodingError):
            encoder.encode(np.ones(3), SCALE)

    def test_overflowing_scale_rejected(self):
        encoder = CkksEncoder(N)
        with pytest.raises(EncodingError):
            encoder.encode(np.ones(encoder.slots), 2.0**63)


class TestContext:
    def test_security_enforcement(self):
        with pytest.raises(SecurityError):
            CkksContext(1024, [26, 26, 26, 30], enforce_security=True)
        CkksContext(4096, [26, 26, 26, 30], enforce_security=True)

    def test_basis_ordering_consumes_in_chain_order(self):
        context = CkksContext(N, [20, 22, 24, 30], enforce_security=False)
        level0 = context.data_basis(0)
        level1 = context.data_basis(1)
        # The prime consumed first (level 0 -> 1) is the first chain entry (20 bits).
        dropped = set(level0.primes) - set(level1.primes)
        assert len(dropped) == 1
        assert abs(np.log2(dropped.pop()) - 20) < 1.0

    def test_galois_element_is_power_of_five(self):
        context = CkksContext(N, [26, 30], enforce_security=False)
        assert context.galois_element_for_step(1) == 5
        assert context.galois_element_for_step(2) == 25 % (2 * N)


class TestSchemeOperations:
    def test_encrypt_decrypt(self, ckks):
        context, encryptor, decryptor, _ = ckks
        values = random_vector(context, 0)
        decrypted = decryptor.decrypt(encryptor.encode_and_encrypt(values, SCALE))
        np.testing.assert_allclose(decrypted, values, atol=5e-3)

    def test_homomorphic_addition(self, ckks):
        context, encryptor, decryptor, evaluator = ckks
        a, b = random_vector(context, 1), random_vector(context, 2)
        result = evaluator.add(
            encryptor.encode_and_encrypt(a, SCALE), encryptor.encode_and_encrypt(b, SCALE)
        )
        np.testing.assert_allclose(decryptor.decrypt(result), a + b, atol=1e-2)

    def test_homomorphic_subtraction_and_negation(self, ckks):
        context, encryptor, decryptor, evaluator = ckks
        a, b = random_vector(context, 3), random_vector(context, 4)
        ca, cb = encryptor.encode_and_encrypt(a, SCALE), encryptor.encode_and_encrypt(b, SCALE)
        np.testing.assert_allclose(decryptor.decrypt(evaluator.sub(ca, cb)), a - b, atol=1e-2)
        np.testing.assert_allclose(decryptor.decrypt(evaluator.negate(ca)), -a, atol=1e-2)

    def test_homomorphic_multiplication_with_relinearization(self, ckks):
        context, encryptor, decryptor, evaluator = ckks
        a, b = random_vector(context, 5), random_vector(context, 6)
        product = evaluator.relinearize(
            evaluator.multiply(
                encryptor.encode_and_encrypt(a, SCALE), encryptor.encode_and_encrypt(b, SCALE)
            )
        )
        assert product.size == 2
        np.testing.assert_allclose(decryptor.decrypt(product), a * b, atol=5e-2)

    def test_rescale_divides_scale_and_preserves_value(self, ckks):
        context, encryptor, decryptor, evaluator = ckks
        a, b = random_vector(context, 7), random_vector(context, 8)
        product = evaluator.relinearize(
            evaluator.multiply(
                encryptor.encode_and_encrypt(a, SCALE), encryptor.encode_and_encrypt(b, SCALE)
            )
        )
        rescaled = evaluator.rescale_to_next(product)
        assert rescaled.level == 1
        assert rescaled.scale < product.scale
        np.testing.assert_allclose(decryptor.decrypt(rescaled), a * b, atol=5e-2)

    def test_plaintext_multiplication_and_addition(self, ckks):
        context, encryptor, decryptor, evaluator = ckks
        a = random_vector(context, 9)
        mask = random_vector(context, 10)
        cipher = encryptor.encode_and_encrypt(a, SCALE)
        product = evaluator.multiply_plain(cipher, encryptor.encode(mask, SCALE))
        np.testing.assert_allclose(decryptor.decrypt(product), a * mask, atol=5e-2)
        shifted = evaluator.add_plain(cipher, encryptor.encode(mask, cipher.scale))
        np.testing.assert_allclose(decryptor.decrypt(shifted), a + mask, atol=1e-2)

    @pytest.mark.parametrize("steps", [1, 2, 5])
    def test_rotation(self, ckks, steps):
        context, encryptor, decryptor, evaluator = ckks
        values = random_vector(context, 11)
        rotated = evaluator.rotate(encryptor.encode_and_encrypt(values, SCALE), steps)
        np.testing.assert_allclose(decryptor.decrypt(rotated), np.roll(values, -steps), atol=2e-2)

    def test_mod_switch_preserves_value_and_scale(self, ckks):
        context, encryptor, decryptor, evaluator = ckks
        values = random_vector(context, 12)
        cipher = encryptor.encode_and_encrypt(values, SCALE)
        switched = evaluator.mod_switch_to_next(cipher)
        assert switched.level == 1
        assert switched.scale == cipher.scale
        np.testing.assert_allclose(decryptor.decrypt(switched), values, atol=5e-3)

    def test_depth_two_computation(self, ckks):
        context, encryptor, decryptor, evaluator = ckks
        a = random_vector(context, 13, magnitude=0.8)
        cipher = encryptor.encode_and_encrypt(a, SCALE)
        square = evaluator.rescale_to_next(evaluator.relinearize(evaluator.multiply(cipher, cipher)))
        fourth = evaluator.rescale_to_next(evaluator.relinearize(evaluator.multiply(square, square)))
        np.testing.assert_allclose(decryptor.decrypt(fourth), a**4, atol=0.1)

    # -- error paths ---------------------------------------------------------------
    def test_level_mismatch_rejected(self, ckks):
        context, encryptor, _, evaluator = ckks
        a = encryptor.encode_and_encrypt(np.ones(4), SCALE)
        b = evaluator.mod_switch_to_next(encryptor.encode_and_encrypt(np.ones(4), SCALE))
        with pytest.raises(LevelMismatchError):
            evaluator.add(a, b)

    def test_scale_mismatch_rejected(self, ckks):
        context, encryptor, _, evaluator = ckks
        a = encryptor.encode_and_encrypt(np.ones(4), SCALE)
        b = encryptor.encode_and_encrypt(np.ones(4), SCALE * 4)
        with pytest.raises(ScaleMismatchError):
            evaluator.add(a, b)

    def test_multiply_requires_two_polynomials(self, ckks):
        context, encryptor, _, evaluator = ckks
        a = encryptor.encode_and_encrypt(np.ones(4), SCALE)
        three = evaluator.multiply(a, a)
        with pytest.raises(PolynomialCountError):
            evaluator.multiply(three, a)

    def test_rescale_exhausts_modulus(self, ckks):
        context, encryptor, _, evaluator = ckks
        cipher = encryptor.encode_and_encrypt(np.ones(4), SCALE)
        for _ in range(context.max_level - 1):
            cipher = evaluator.mod_switch_to_next(cipher)
        with pytest.raises(ModulusExhaustedError):
            evaluator.rescale_to_next(cipher)

    def test_rotation_without_key_rejected(self, ckks):
        context, encryptor, _, evaluator = ckks
        cipher = encryptor.encode_and_encrypt(np.ones(4), SCALE)
        with pytest.raises(ParameterError):
            evaluator.rotate(cipher, 7)  # only steps 1, 2, 5 have keys
