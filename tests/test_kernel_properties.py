"""Property tests pinning every optimized CKKS kernel to its retained oracle.

The profiling work (``repro.cli profile``) replaced the hot paths of the
scheme — the NTT butterfly loops, the rescale and CRT-composition kernels,
and the whole key-switching pipeline — with fused/NTT-domain variants.  The
original implementations were kept as reference oracles precisely so the
optimized paths can be pinned against them over randomized inputs:

* ``NttContext._transform`` vs ``_transform_reference`` (fused reductions);
* ``RnsPolynomial.divide_and_round_last`` / ``to_int_coefficients`` vs
  their ``*_reference`` row-at-a-time versions;
* ``galois_ntt_permutation`` vs the coefficient-domain automorphism;
* ``Evaluator(fast_keyswitch=True)`` vs the coefficient-domain reference —
  **bit-exact** for relinearization, **noise-level** for hoisted rotations
  (digit lifting does not commute with the automorphism's sign flips, so
  the two valid decompositions differ only under the noise floor).
"""

import numpy as np
import pytest

from repro.ckks import (
    CkksContext,
    Decryptor,
    Encryptor,
    Evaluator,
    KeyGenerator,
)
from repro.ckks.ntt import galois_ntt_permutation, get_ntt_context
from repro.ckks.numth import generate_ntt_primes
from repro.ckks.rns import RnsBasis, RnsPolynomial

DRAWS = 5


def random_residues(rng, basis):
    return RnsPolynomial(
        basis,
        rng.integers(
            0,
            np.array(basis.primes).reshape(-1, 1),
            size=(len(basis), basis.poly_modulus_degree),
            dtype=np.int64,
        ),
    )


class TestNttAgainstReference:
    @pytest.mark.parametrize("n", [64, 256, 1024])
    @pytest.mark.parametrize("bits", [20, 28])
    def test_forward_and_inverse_match_reference(self, n, bits):
        prime = generate_ntt_primes([bits], n)[0]
        ntt = get_ntt_context(prime, n)
        rng = np.random.default_rng(n * bits)
        for draw in range(DRAWS):
            coeffs = rng.integers(0, prime, size=n, dtype=np.int64)
            forward = ntt.forward(coeffs)
            assert np.array_equal(forward, ntt.forward_reference(coeffs))
            assert np.array_equal(ntt.inverse(forward), ntt.inverse_reference(forward))
            assert np.array_equal(ntt.inverse(forward), coeffs % prime)

    def test_edge_vectors(self):
        n = 128
        prime = generate_ntt_primes([25], n)[0]
        ntt = get_ntt_context(prime, n)
        for coeffs in (
            np.zeros(n, dtype=np.int64),
            np.full(n, prime - 1, dtype=np.int64),
            np.eye(1, n, 0, dtype=np.int64)[0],  # X^0
            np.eye(1, n, n - 1, dtype=np.int64)[0],  # X^(N-1)
        ):
            assert np.array_equal(ntt.forward(coeffs), ntt.forward_reference(coeffs))
            assert np.array_equal(ntt.inverse(ntt.forward(coeffs)), coeffs % prime)

    def test_negacyclic_multiply_matches_schoolbook(self):
        n = 64
        prime = generate_ntt_primes([25], n)[0]
        ntt = get_ntt_context(prime, n)
        rng = np.random.default_rng(7)
        a = rng.integers(0, prime, size=n, dtype=np.int64)
        b = rng.integers(0, prime, size=n, dtype=np.int64)
        want = np.zeros(n, dtype=np.int64)
        for i in range(n):
            for j in range(n):
                index = (i + j) % n
                sign = -1 if i + j >= n else 1
                want[index] = (want[index] + sign * int(a[i]) * int(b[j])) % prime
        assert np.array_equal(ntt.multiply(a, b), want % prime)


class TestGaloisPermutation:
    @pytest.mark.parametrize("n", [64, 256])
    def test_permutation_matches_coefficient_automorphism(self, n):
        prime = generate_ntt_primes([25], n)[0]
        basis = RnsBasis([prime], n)
        ntt = basis.ntt[0]
        rng = np.random.default_rng(n)
        elements = [pow(5, k, 2 * n) for k in (1, 2, 3, n // 4)] + [2 * n - 1]
        for element in elements:
            perm = galois_ntt_permutation(n, element)
            assert sorted(perm.tolist()) == list(range(n)), "not a permutation"
            for draw in range(DRAWS):
                poly = random_residues(rng, basis)
                via_coeffs = ntt.forward(poly.automorphism(element).residues[0])
                via_perm = ntt.forward(poly.residues[0])[perm]
                assert np.array_equal(via_coeffs, via_perm)


class TestRnsKernelsAgainstReference:
    @pytest.mark.parametrize("level_primes", [2, 3, 5])
    def test_divide_and_round_last(self, level_primes):
        n = 128
        primes = generate_ntt_primes([24] * level_primes + [28], n)
        basis = RnsBasis(primes, n)
        rng = np.random.default_rng(level_primes)
        for draw in range(DRAWS):
            poly = random_residues(rng, basis)
            fast = poly.divide_and_round_last()
            slow = poly.divide_and_round_last_reference()
            assert fast.basis == slow.basis
            assert np.array_equal(fast.residues, slow.residues)

    def test_to_int_coefficients(self):
        n = 64
        basis = RnsBasis(generate_ntt_primes([22, 24, 26], n), n)
        rng = np.random.default_rng(11)
        for draw in range(DRAWS):
            poly = random_residues(rng, basis)
            assert poly.to_int_coefficients() == poly.to_int_coefficients_reference()

    def test_roundtrip_through_int_coefficients(self):
        n = 64
        basis = RnsBasis(generate_ntt_primes([22, 24], n), n)
        rng = np.random.default_rng(13)
        poly = random_residues(rng, basis)
        back = RnsPolynomial.from_int_coefficients(basis, poly.to_int_coefficients())
        assert np.array_equal(back.residues, poly.residues)


class TestKeySwitchAgainstReference:
    N = 1024
    SCALE = 2.0**24
    STEPS = (1, 2, 5, 7)

    @pytest.fixture(scope="class", params=[1, 2])
    def scheme(self, request):
        seed = request.param
        context = CkksContext(self.N, [26, 26, 26, 30], enforce_security=False)
        keygen = KeyGenerator(context, seed=seed)
        relin_key = keygen.create_relin_key()
        # STEPS plus the wrapped form of -1 (rotation steps are reduced
        # modulo the slot count before key lookup).
        galois_keys = keygen.create_galois_keys(self.STEPS + (self.N // 2 - 1,))
        return {
            "context": context,
            "encryptor": Encryptor(context, keygen.create_public_key(), seed=seed + 100),
            "decryptor": Decryptor(context, keygen.secret_key),
            "fast": Evaluator(context, relin_key, galois_keys, fast_keyswitch=True),
            "reference": Evaluator(context, relin_key, galois_keys, fast_keyswitch=False),
        }

    def _fresh_cipher(self, scheme, seed):
        rng = np.random.default_rng(seed)
        values = rng.uniform(-1.0, 1.0, scheme["context"].slots)
        return values, scheme["encryptor"].encode_and_encrypt(values, self.SCALE)

    def test_relinearize_is_bit_exact(self, scheme):
        for draw in range(DRAWS):
            _, cipher = self._fresh_cipher(scheme, draw)
            squared = scheme["fast"].multiply(cipher, cipher)
            fast = scheme["fast"].relinearize(squared)
            reference = scheme["reference"].relinearize(squared)
            assert fast.scale == reference.scale and fast.level == reference.level
            for a, b in zip(fast.polys, reference.polys):
                assert np.array_equal(a.residues, b.residues)

    def test_relinearize_bit_exact_at_lower_level(self, scheme):
        _, cipher = self._fresh_cipher(scheme, 99)
        dropped = scheme["fast"].mod_switch_to_next(cipher)
        squared = scheme["fast"].multiply(dropped, dropped)
        fast = scheme["fast"].relinearize(squared)
        reference = scheme["reference"].relinearize(squared)
        for a, b in zip(fast.polys, reference.polys):
            assert np.array_equal(a.residues, b.residues)

    def test_hoisted_rotation_matches_reference_at_noise_level(self, scheme):
        values, cipher = self._fresh_cipher(scheme, 17)
        for step in self.STEPS:
            fast = scheme["fast"].rotate(cipher, step)
            reference = scheme["reference"].rotate(cipher, step)
            expected = np.roll(values, -step)
            got_fast = np.real(scheme["decryptor"].decrypt(fast))
            got_reference = np.real(scheme["decryptor"].decrypt(reference))
            # Both decompositions must decrypt to the rotation; they differ
            # from each other only under the noise floor.
            assert np.max(np.abs(got_fast - expected)) < 1e-2
            assert np.max(np.abs(got_reference - expected)) < 1e-2
            assert np.max(np.abs(got_fast - got_reference)) < 1e-2

    def test_hoisted_rotations_share_one_decomposition(self, scheme):
        """Rotating the same ciphertext twice must reuse the cached digit
        NTTs and stay deterministic (same residues both times)."""
        _, cipher = self._fresh_cipher(scheme, 23)
        first = scheme["fast"].rotate(cipher, 2)
        again = scheme["fast"].rotate(cipher, 2)
        for a, b in zip(first.polys, again.polys):
            assert np.array_equal(a.residues, b.residues)

    def test_negative_and_wrapping_steps(self, scheme):
        values, cipher = self._fresh_cipher(scheme, 31)
        slots = scheme["context"].slots
        for step in (-1, slots + 2):
            fast = scheme["fast"].rotate(cipher, step)
            got = np.real(scheme["decryptor"].decrypt(fast))
            assert np.max(np.abs(got - np.roll(values, -step))) < 1e-2
