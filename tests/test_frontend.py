"""Tests for the PyEVA frontend (Expr operators, context management, compile)."""

import numpy as np
import pytest

from repro.core import execute_reference
from repro.core.types import Op
from repro.errors import CompilationError
from repro.frontend import (
    EvaProgram,
    constant,
    current_program,
    input_encrypted,
    output,
    sum_slots,
)


class TestContextManagement:
    def test_no_active_program_raises(self):
        with pytest.raises(CompilationError):
            current_program()

    def test_nested_programs(self):
        outer = EvaProgram("outer", vec_size=8)
        inner = EvaProgram("inner", vec_size=8)
        with outer:
            assert current_program() is outer
            with inner:
                assert current_program() is inner
            assert current_program() is outer

    def test_module_functions_use_active_program(self):
        program = EvaProgram("p", vec_size=8, default_scale=20)
        with program:
            x = input_encrypted("x")
            output("out", x * 2.0)
        assert "x" in program.graph.inputs
        assert "out" in program.graph.outputs

    def test_mixing_programs_rejected(self):
        p1 = EvaProgram("p1", vec_size=8)
        p2 = EvaProgram("p2", vec_size=8)
        with p1:
            x1 = input_encrypted("x")
        with p2:
            x2 = input_encrypted("x")
            with pytest.raises(CompilationError):
                _ = x1 + x2


class TestExprOperators:
    def run(self, build, inputs, vec_size=8):
        program = EvaProgram("t", vec_size=vec_size, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("out", build(x), 25)
        return execute_reference(program.graph, inputs)["out"]

    def test_add_sub_mul_with_literals(self):
        xv = np.linspace(-1, 1, 8)
        np.testing.assert_allclose(self.run(lambda x: x + 1.0, {"x": xv}), xv + 1.0)
        np.testing.assert_allclose(self.run(lambda x: 1.0 + x, {"x": xv}), xv + 1.0)
        np.testing.assert_allclose(self.run(lambda x: x - 0.5, {"x": xv}), xv - 0.5)
        np.testing.assert_allclose(self.run(lambda x: 2.0 - x, {"x": xv}), 2.0 - xv)
        np.testing.assert_allclose(self.run(lambda x: x * 3.0, {"x": xv}), xv * 3.0)
        np.testing.assert_allclose(self.run(lambda x: 3.0 * x, {"x": xv}), xv * 3.0)

    def test_negation(self):
        xv = np.linspace(-1, 1, 8)
        np.testing.assert_allclose(self.run(lambda x: -x, {"x": xv}), -xv)

    def test_vector_literal_operand(self):
        xv = np.linspace(-1, 1, 8)
        mask = np.arange(8, dtype=float)
        np.testing.assert_allclose(
            self.run(lambda x: x * mask.tolist(), {"x": xv}), xv * mask
        )

    @pytest.mark.parametrize("exponent", [1, 2, 3, 4, 5, 8])
    def test_power(self, exponent):
        xv = np.linspace(0.1, 1, 8)
        np.testing.assert_allclose(
            self.run(lambda x: x**exponent, {"x": xv}), xv**exponent, rtol=1e-12
        )

    def test_power_uses_logarithmic_depth(self):
        program = EvaProgram("pow", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("out", x**8, 25)
        assert program.graph.multiplicative_depth() == 3

    def test_power_zero_is_constant_one(self):
        """x ** 0 is the constant one at the program's default scale."""
        xv = np.linspace(-1, 1, 8)
        np.testing.assert_allclose(self.run(lambda x: x**0 * 1.0, {"x": xv}), np.ones(8))
        program = EvaProgram("pow0", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            one = x**0
        assert one.term.is_constant
        assert one.term.scale == 25.0

    def test_invalid_power_rejected(self):
        program = EvaProgram("pow", vec_size=8)
        with program:
            x = input_encrypted("x")
            with pytest.raises(CompilationError):
                _ = x**-1
            with pytest.raises(CompilationError):
                _ = x**1.5
            with pytest.raises(CompilationError):
                _ = x**True

    def test_truediv_by_scalar(self):
        xv = np.linspace(-1, 1, 8)
        np.testing.assert_allclose(self.run(lambda x: x / 2, {"x": xv}), xv / 2)
        np.testing.assert_allclose(self.run(lambda x: x / 0.25, {"x": xv}), xv * 4)

    def test_truediv_by_vector(self):
        xv = np.linspace(-1, 1, 8)
        divisor = np.linspace(1, 2, 8)
        np.testing.assert_allclose(
            self.run(lambda x: x / divisor, {"x": xv}), xv / divisor
        )

    def test_truediv_lowers_to_multiply(self):
        """Division never emits a new opcode — it is multiplication by 1/c."""
        program = EvaProgram("div", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("out", x / 4.0, 25)
        ops = {term.op for term in program.graph.terms() if term.is_instruction}
        assert ops == {Op.MULTIPLY}

    def test_truediv_by_cipher_rejected(self):
        program = EvaProgram("div", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            y = input_encrypted("y", 25)
            with pytest.raises(CompilationError, match="not expressible"):
                _ = x / y
            with pytest.raises(CompilationError, match="reciprocal"):
                _ = 1.0 / x

    def test_truediv_by_zero_rejected(self):
        program = EvaProgram("div", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            with pytest.raises(CompilationError, match="zero"):
                _ = x / 0.0
            with pytest.raises(CompilationError, match="zero"):
                _ = x / [1.0, 0.0]

    def test_rotations(self):
        xv = np.arange(8, dtype=float)
        np.testing.assert_allclose(self.run(lambda x: (x << 2) * 1.0, {"x": xv}), np.roll(xv, -2))
        np.testing.assert_allclose(self.run(lambda x: (x >> 1) * 1.0, {"x": xv}), np.roll(xv, 1))

    def test_sum_helper(self):
        xv = np.arange(8, dtype=float)
        program = EvaProgram("s", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("out", sum_slots(x), 25)
        out = execute_reference(program.graph, {"x": xv})["out"]
        np.testing.assert_allclose(out, np.full(8, xv.sum()))


class TestProgramBuilding:
    def test_default_scale_applied(self):
        program = EvaProgram("p", vec_size=8, default_scale=33)
        with program:
            x = input_encrypted("x")
            output("out", x * 1.0)
        assert program.graph.inputs["x"].scale == 33
        assert program.graph.output_scales["out"] == 33

    def test_kernel_scope_labels_terms(self):
        program = EvaProgram("p", vec_size=8, default_scale=20)
        with program:
            x = input_encrypted("x")
            with program.kernel("conv1"):
                y = x * x
            z = y + 1.0
            output("out", z)
        labels = {t.kernel for t in program.graph.terms() if t.op is Op.MULTIPLY}
        assert labels == {"conv1"}
        add_labels = {t.kernel for t in program.graph.terms() if t.op is Op.ADD}
        assert add_labels == {None}

    def test_compile_produces_result(self):
        program = EvaProgram("p", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("out", x * x, 25)
        result = program.compile()
        assert result.parameters.poly_modulus_degree >= 16
        assert result.options.policy == "eva"

    def test_sum_figure6_sobel_shape(self):
        # A miniature of the paper's Figure 6 program compiles cleanly.
        size = 8
        program = EvaProgram("sobel", vec_size=size * size, default_scale=30)
        filt = [[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]]
        with program:
            image = input_encrypted("image", 30)
            ix = None
            for i in range(3):
                for j in range(3):
                    rot = image << (i * size + j)
                    h = rot * constant(float(filt[i][j]), 30)
                    ix = h if ix is None else ix + h
            d = ix**2
            output("d", d, 30)
        result = program.compile()
        assert len(result.rotation_steps) > 0
