"""Tests for the cost model and the parallel-schedule simulator (Figure 7 machinery)."""

import pytest

from repro.backend.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.core import CompilerOptions, simulate_schedule
from repro.core.scheduling import term_costs
from repro.core.types import Op
from repro.frontend import EvaProgram, input_encrypted, output


def build_wide_program(width: int = 16) -> EvaProgram:
    """A embarrassingly parallel program: many independent squarings."""
    program = EvaProgram("wide", vec_size=32, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        acc = None
        for i in range(width):
            with program.kernel(f"k{i}"):
                branch = (x << i) * (x << i)
            acc = branch if acc is None else acc + branch
        output("out", acc, 25)
    return program


class TestCostModel:
    def test_costs_increase_with_degree_and_level(self):
        model = CostModel()
        assert model.op_seconds("multiply", 16384, 4) > model.op_seconds("multiply", 8192, 4)
        assert model.op_seconds("multiply", 8192, 8) > model.op_seconds("multiply", 8192, 2)

    def test_keyswitching_ops_cost_more_than_additions(self):
        model = CostModel()
        assert model.op_seconds("rotate", 8192, 4) > model.op_seconds("add", 8192, 4)
        assert model.op_seconds("relinearize", 8192, 4) > model.op_seconds("multiply_plain", 8192, 4)

    def test_term_kind_mapping(self):
        model = DEFAULT_COST_MODEL
        assert model.term_kind(Op.MULTIPLY, 2) == "multiply"
        assert model.term_kind(Op.MULTIPLY, 1) == "multiply_plain"
        assert model.term_kind(Op.ROTATE_LEFT, 1) == "rotate"
        assert model.term_kind(Op.ADD, 2) == "add"
        assert model.term_kind(Op.RESCALE, 1) == "rescale"

    def test_term_costs_cover_all_cipher_instructions(self):
        program = build_wide_program(4)
        compiled = program.compile()
        costs = term_costs(compiled)
        cipher_instructions = [
            t
            for t in compiled.program.terms()
            if t.is_instruction and t.value_type.name == "CIPHER"
        ]
        assert set(costs) == {t.id for t in cipher_instructions}
        assert all(c > 0 for c in costs.values())


class TestScheduleSimulation:
    def test_single_thread_equals_total_work(self):
        compiled = build_wide_program(8).compile()
        schedule = simulate_schedule(compiled, threads=1)
        assert schedule.makespan_seconds == pytest.approx(schedule.total_work_seconds, rel=1e-9)

    def test_more_threads_never_slower(self):
        compiled = build_wide_program(8).compile()
        previous = float("inf")
        for threads in (1, 2, 4, 8):
            makespan = simulate_schedule(compiled, threads=threads).makespan_seconds
            assert makespan <= previous + 1e-12
            previous = makespan

    def test_makespan_bounded_by_critical_path(self):
        compiled = build_wide_program(8).compile()
        schedule = simulate_schedule(compiled, threads=64)
        assert schedule.makespan_seconds >= schedule.critical_path_seconds - 1e-12

    def test_dag_schedule_scales_better_than_kernel_schedule(self):
        # EVA's whole-program DAG scheduling exploits parallelism across
        # kernels; the bulk-synchronous per-kernel schedule cannot (Figure 7).
        compiled = build_wide_program(16).compile()
        dag = simulate_schedule(compiled, threads=16, discipline="dag")
        kernel = simulate_schedule(compiled, threads=16, discipline="kernel")
        assert dag.makespan_seconds <= kernel.makespan_seconds + 1e-12

    def test_kernel_schedule_equal_work(self):
        compiled = build_wide_program(4).compile()
        dag = simulate_schedule(compiled, threads=1, discipline="dag")
        kernel = simulate_schedule(compiled, threads=1, discipline="kernel")
        assert dag.total_work_seconds == pytest.approx(kernel.total_work_seconds)

    def test_parallel_efficiency_in_unit_range(self):
        compiled = build_wide_program(8).compile()
        for threads in (1, 4, 16):
            schedule = simulate_schedule(compiled, threads=threads)
            assert 0.0 < schedule.parallel_efficiency <= 1.0 + 1e-9

    def test_unknown_discipline_rejected(self):
        compiled = build_wide_program(2).compile()
        with pytest.raises(ValueError):
            simulate_schedule(compiled, threads=2, discipline="magic")

    def test_eva_latency_not_worse_than_chet(self):
        # Table 5 shape: with the same cost model, the EVA-compiled program on
        # a DAG schedule should not be slower than the CHET baseline on a
        # bulk-synchronous schedule.
        program = build_wide_program(8)
        eva = program.compile(options=CompilerOptions(policy="eva"))
        chet = program.compile(options=CompilerOptions(policy="chet"))
        eva_latency = simulate_schedule(eva, threads=8, discipline="dag").makespan_seconds
        chet_latency = simulate_schedule(chet, threads=8, discipline="kernel").makespan_seconds
        assert eva_latency <= chet_latency
