"""Tests for the reference executor and the backend executor (incl. memory reuse)."""

import threading

import numpy as np
import pytest

from repro.backend import MockBackend
from repro.backend.mock_backend import MockContext
from repro.core import Executor, ReferenceExecutor, execute_reference
from repro.core.ir import Program
from repro.core.types import Op, ValueType
from repro.errors import ExecutionError
from repro.frontend import EvaProgram, input_encrypted, input_plain, output


class TestReferenceExecutor:
    def test_basic_arithmetic(self):
        program = EvaProgram("arith", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            y = input_encrypted("y", 25)
            output("sum", x + y, 25)
            output("diff", x - y, 25)
            output("prod", x * y, 25)
            output("neg", -x, 25)
        xv = np.arange(8, dtype=float)
        yv = np.ones(8) * 2
        out = execute_reference(program.graph, {"x": xv, "y": yv})
        np.testing.assert_allclose(out["sum"], xv + yv)
        np.testing.assert_allclose(out["diff"], xv - yv)
        np.testing.assert_allclose(out["prod"], xv * yv)
        np.testing.assert_allclose(out["neg"], -xv)

    def test_rotations(self):
        program = EvaProgram("rot", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("left", (x << 3) * 1.0, 25)
            output("right", (x >> 2) * 1.0, 25)
        xv = np.arange(8, dtype=float)
        out = execute_reference(program.graph, {"x": xv})
        np.testing.assert_allclose(out["left"], np.roll(xv, -3))
        np.testing.assert_allclose(out["right"], np.roll(xv, 2))

    def test_sum_reduction(self):
        program = EvaProgram("sum", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("total", x.sum(), 25)
        xv = np.arange(8, dtype=float)
        out = execute_reference(program.graph, {"x": xv})
        np.testing.assert_allclose(out["total"], np.full(8, xv.sum()))

    def test_scalar_broadcasting(self):
        program = EvaProgram("bcast", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("out", x * 2.0 + 1.0, 25)
        out = execute_reference(program.graph, {"x": 3.0})
        np.testing.assert_allclose(out["out"], np.full(8, 7.0))

    def test_short_input_replication(self):
        program = EvaProgram("rep", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("out", x * 1.0, 25)
        out = execute_reference(program.graph, {"x": [1.0, 2.0]})
        np.testing.assert_allclose(out["out"], np.tile([1.0, 2.0], 4))

    def test_missing_input_raises(self, simple_pyeva_program):
        with pytest.raises(ExecutionError):
            execute_reference(simple_pyeva_program.graph, {"x": np.zeros(16)})

    def test_fhe_ops_are_identities(self):
        program = Program("fhe", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=30)
        relin = program.make_term(Op.RELINEARIZE, [program.make_term(Op.MULTIPLY, [x, x])])
        rescaled = program.make_term(Op.RESCALE, [relin], rescale_value=30.0)
        program.set_output("out", rescaled, scale=30)
        out = ReferenceExecutor(program).execute({"x": np.full(8, 2.0)})
        np.testing.assert_allclose(out["out"], np.full(8, 4.0))


class TestBackendExecutor:
    def test_matches_reference_on_mock(self, simple_pyeva_program, simple_inputs, noiseless_backend):
        compiled = simple_pyeva_program.compile()
        result = Executor(compiled, noiseless_backend).execute(simple_inputs)
        reference = execute_reference(simple_pyeva_program.graph, simple_inputs)
        np.testing.assert_allclose(result["w"], reference["w"], rtol=1e-9, atol=1e-12)

    def test_noise_model_stays_close_to_reference(self, simple_pyeva_program, simple_inputs, mock_backend):
        compiled = simple_pyeva_program.compile()
        result = Executor(compiled, mock_backend).execute(simple_inputs)
        reference = execute_reference(simple_pyeva_program.graph, simple_inputs)
        np.testing.assert_allclose(result["w"], reference["w"], atol=1e-2)

    def test_plain_inputs_supported(self, noiseless_backend):
        program = EvaProgram("plain", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            mask = input_plain("mask", 15)
            output("out", x * mask + mask, 25)
        xv = np.arange(8, dtype=float)
        mv = np.linspace(0, 1, 8)
        compiled = program.compile()
        result = Executor(compiled, noiseless_backend).execute({"x": xv, "mask": mv})
        np.testing.assert_allclose(result["out"], xv * mv + mv, rtol=1e-9)

    def test_subtraction_with_plain_on_left(self, noiseless_backend):
        program = EvaProgram("sub", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("out", 1.0 - x, 25)
        xv = np.linspace(-1, 1, 8)
        compiled = program.compile()
        result = Executor(compiled, noiseless_backend).execute({"x": xv})
        np.testing.assert_allclose(result["out"], 1.0 - xv, rtol=1e-9)

    def test_missing_input_raises(self, simple_pyeva_program, mock_backend):
        compiled = simple_pyeva_program.compile()
        with pytest.raises(ExecutionError):
            Executor(compiled, mock_backend).execute({"x": np.zeros(16)})

    def test_execution_stats_populated(self, simple_pyeva_program, simple_inputs, mock_backend):
        compiled = simple_pyeva_program.compile()
        result = Executor(compiled, mock_backend).execute(simple_inputs)
        stats = result.stats
        assert stats.op_count > 0
        assert stats.wall_seconds > 0
        assert stats.peak_live_ciphertexts > 0
        assert stats.peak_live_ciphertexts <= stats.op_count

    def test_memory_reuse_limits_live_ciphertexts(self, noiseless_backend):
        # A long chain of multiplies by constants should only ever keep a
        # couple of ciphertexts alive at a time thanks to retirement.
        program = EvaProgram("chain", vec_size=8, default_scale=20)
        with program:
            x = input_encrypted("x", 20)
            node = x
            for _ in range(30):
                node = node * 0.9
            output("out", node, 20)
        compiled = program.compile()
        executor = Executor(compiled, noiseless_backend)
        result = executor.execute({"x": np.ones(8)})
        assert result.stats.peak_live_ciphertexts <= 5

    def test_parallel_execution_matches_serial(self, simple_pyeva_program, simple_inputs):
        compiled = simple_pyeva_program.compile()
        serial = Executor(compiled, MockBackend(error_model="none")).execute(simple_inputs)
        parallel = Executor(compiled, MockBackend(error_model="none"), threads=4).execute(simple_inputs)
        np.testing.assert_allclose(parallel["w"], serial["w"], rtol=1e-9)

    def test_output_truncated_to_vec_size(self, simple_pyeva_program, simple_inputs, mock_backend):
        compiled = simple_pyeva_program.compile()
        result = Executor(compiled, mock_backend).execute(simple_inputs)
        assert result["w"].shape == (16,)

    def test_default_backend_is_mock(self, simple_pyeva_program, simple_inputs):
        compiled = simple_pyeva_program.compile()
        result = Executor(compiled).execute(simple_inputs)
        assert "w" in result.outputs

    def test_injected_context_skips_context_stage(self, simple_pyeva_program, simple_inputs):
        compiled = simple_pyeva_program.compile()
        executor = Executor(compiled, MockBackend(error_model="none"))
        context = executor.create_context()
        warm = executor.execute(simple_inputs, context=context)
        cold = executor.execute(simple_inputs)
        assert warm.stats.context_seconds == 0.0
        assert cold.stats.context_seconds > 0.0
        np.testing.assert_allclose(warm["w"], cold["w"], rtol=1e-9)


class _SentinelFailingContext(MockContext):
    """Noiseless mock context that fails the multiply of a sentinel operand.

    Detection is by operand *value*, so exactly one term of the test programs
    fails no matter how threads interleave.  With ``block_others`` set, every
    other multiply parks until the failure has happened — which makes "was a
    consumer dispatched after the error?" a deterministic question instead of
    a timing-dependent one.
    """

    SENTINEL = 7.0

    def __init__(self, parameters, block_others: bool = False):
        super().__init__(parameters, error_model="none")
        self.block_others = block_others
        self.error_event = threading.Event()
        self.survivor_multiplies = 0

    def multiply(self, a, b):
        if a.values[0] == self.SENTINEL and b.values[0] == self.SENTINEL:
            self.error_event.set()
            raise ExecutionError("injected failure on the sentinel operand")
        if self.block_others:
            self.error_event.wait(5.0)
        self.survivor_multiplies += 1
        return super().multiply(a, b)


class _SentinelFailingBackend(MockBackend):
    def __init__(self, block_others: bool = False):
        super().__init__(error_model="none")
        self.block_others = block_others
        self.last_context = None

    def create_context(self, parameters):
        self.last_context = _SentinelFailingContext(parameters, self.block_others)
        return self.last_context


class TestParallelErrorPath:
    """The parallel executor must stop dispatching and re-raise deterministically."""

    CHAIN_LENGTH = 6

    @classmethod
    def _two_branch_program(cls) -> EvaProgram:
        # Output "a" fails at its one multiply (x is the 7.0 sentinel);
        # output "b" is an independent chain of multiplies on y.
        program = EvaProgram("twobranch", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            y = input_encrypted("y", 25)
            output("a", x * x, 25)
            node = y
            for _ in range(cls.CHAIN_LENGTH):
                node = node * y
            output("b", node, 25)
        return program

    @classmethod
    def _inputs(cls):
        return {
            "x": np.full(8, _SentinelFailingContext.SENTINEL),
            "y": np.full(8, 1.01),
        }

    def test_error_is_reraised(self):
        compiled = self._two_branch_program().compile()
        with pytest.raises(ExecutionError, match="injected failure"):
            Executor(compiled, _SentinelFailingBackend(), threads=4).execute(self._inputs())

    def test_error_is_deterministic_across_runs(self):
        compiled = self._two_branch_program().compile()
        seen = set()
        for _ in range(5):
            with pytest.raises(ExecutionError) as excinfo:
                Executor(compiled, _SentinelFailingBackend(), threads=4).execute(
                    self._inputs()
                )
            seen.add((type(excinfo.value), str(excinfo.value)))
        assert len(seen) == 1

    def test_no_consumers_dispatched_after_error(self):
        # Non-failing multiplies block until the failure happens, so only the
        # already-dispatched first chain link may complete; if the executor
        # kept dispatching newly-ready consumers after the error, the whole
        # y-chain would run and survivor_multiplies would reach CHAIN_LENGTH.
        compiled = self._two_branch_program().compile()
        backend = _SentinelFailingBackend(block_others=True)
        with pytest.raises(ExecutionError):
            Executor(compiled, backend, threads=2).execute(self._inputs())
        assert backend.last_context.survivor_multiplies <= 1

    def test_serial_and_parallel_raise_same_error(self):
        compiled = self._two_branch_program().compile()
        serial_backend = _SentinelFailingBackend()
        with pytest.raises(ExecutionError) as serial_exc:
            Executor(compiled, serial_backend, threads=1).execute(self._inputs())
        parallel_backend = _SentinelFailingBackend()
        with pytest.raises(ExecutionError) as parallel_exc:
            Executor(compiled, parallel_backend, threads=4).execute(self._inputs())
        assert str(serial_exc.value) == str(parallel_exc.value)
        assert type(serial_exc.value) is type(parallel_exc.value)
