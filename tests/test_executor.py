"""Tests for the reference executor and the backend executor (incl. memory reuse)."""

import numpy as np
import pytest

from repro.backend import MockBackend
from repro.backend.mock_backend import MockContext
from repro.core import CompilerOptions, Executor, ReferenceExecutor, execute_reference
from repro.core.ir import Program
from repro.core.types import Op, ValueType
from repro.errors import ExecutionError
from repro.frontend import EvaProgram, input_encrypted, input_plain, output


class TestReferenceExecutor:
    def test_basic_arithmetic(self):
        program = EvaProgram("arith", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            y = input_encrypted("y", 25)
            output("sum", x + y, 25)
            output("diff", x - y, 25)
            output("prod", x * y, 25)
            output("neg", -x, 25)
        xv = np.arange(8, dtype=float)
        yv = np.ones(8) * 2
        out = execute_reference(program.graph, {"x": xv, "y": yv})
        np.testing.assert_allclose(out["sum"], xv + yv)
        np.testing.assert_allclose(out["diff"], xv - yv)
        np.testing.assert_allclose(out["prod"], xv * yv)
        np.testing.assert_allclose(out["neg"], -xv)

    def test_rotations(self):
        program = EvaProgram("rot", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("left", (x << 3) * 1.0, 25)
            output("right", (x >> 2) * 1.0, 25)
        xv = np.arange(8, dtype=float)
        out = execute_reference(program.graph, {"x": xv})
        np.testing.assert_allclose(out["left"], np.roll(xv, -3))
        np.testing.assert_allclose(out["right"], np.roll(xv, 2))

    def test_sum_reduction(self):
        program = EvaProgram("sum", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("total", x.sum(), 25)
        xv = np.arange(8, dtype=float)
        out = execute_reference(program.graph, {"x": xv})
        np.testing.assert_allclose(out["total"], np.full(8, xv.sum()))

    def test_scalar_broadcasting(self):
        program = EvaProgram("bcast", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("out", x * 2.0 + 1.0, 25)
        out = execute_reference(program.graph, {"x": 3.0})
        np.testing.assert_allclose(out["out"], np.full(8, 7.0))

    def test_short_input_replication(self):
        program = EvaProgram("rep", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("out", x * 1.0, 25)
        out = execute_reference(program.graph, {"x": [1.0, 2.0]})
        np.testing.assert_allclose(out["out"], np.tile([1.0, 2.0], 4))

    def test_missing_input_raises(self, simple_pyeva_program):
        with pytest.raises(ExecutionError):
            execute_reference(simple_pyeva_program.graph, {"x": np.zeros(16)})

    def test_fhe_ops_are_identities(self):
        program = Program("fhe", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=30)
        relin = program.make_term(Op.RELINEARIZE, [program.make_term(Op.MULTIPLY, [x, x])])
        rescaled = program.make_term(Op.RESCALE, [relin], rescale_value=30.0)
        program.set_output("out", rescaled, scale=30)
        out = ReferenceExecutor(program).execute({"x": np.full(8, 2.0)})
        np.testing.assert_allclose(out["out"], np.full(8, 4.0))


class TestBackendExecutor:
    def test_matches_reference_on_mock(self, simple_pyeva_program, simple_inputs, noiseless_backend):
        compiled = simple_pyeva_program.compile()
        result = Executor(compiled, noiseless_backend).execute(simple_inputs)
        reference = execute_reference(simple_pyeva_program.graph, simple_inputs)
        np.testing.assert_allclose(result["w"], reference["w"], rtol=1e-9, atol=1e-12)

    def test_noise_model_stays_close_to_reference(self, simple_pyeva_program, simple_inputs, mock_backend):
        compiled = simple_pyeva_program.compile()
        result = Executor(compiled, mock_backend).execute(simple_inputs)
        reference = execute_reference(simple_pyeva_program.graph, simple_inputs)
        np.testing.assert_allclose(result["w"], reference["w"], atol=1e-2)

    def test_plain_inputs_supported(self, noiseless_backend):
        program = EvaProgram("plain", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            mask = input_plain("mask", 15)
            output("out", x * mask + mask, 25)
        xv = np.arange(8, dtype=float)
        mv = np.linspace(0, 1, 8)
        compiled = program.compile()
        result = Executor(compiled, noiseless_backend).execute({"x": xv, "mask": mv})
        np.testing.assert_allclose(result["out"], xv * mv + mv, rtol=1e-9)

    def test_subtraction_with_plain_on_left(self, noiseless_backend):
        program = EvaProgram("sub", vec_size=8, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("out", 1.0 - x, 25)
        xv = np.linspace(-1, 1, 8)
        compiled = program.compile()
        result = Executor(compiled, noiseless_backend).execute({"x": xv})
        np.testing.assert_allclose(result["out"], 1.0 - xv, rtol=1e-9)

    def test_missing_input_raises(self, simple_pyeva_program, mock_backend):
        compiled = simple_pyeva_program.compile()
        with pytest.raises(ExecutionError):
            Executor(compiled, mock_backend).execute({"x": np.zeros(16)})

    def test_execution_stats_populated(self, simple_pyeva_program, simple_inputs, mock_backend):
        compiled = simple_pyeva_program.compile()
        result = Executor(compiled, mock_backend).execute(simple_inputs)
        stats = result.stats
        assert stats.op_count > 0
        assert stats.wall_seconds > 0
        assert stats.peak_live_ciphertexts > 0
        assert stats.peak_live_ciphertexts <= stats.op_count

    def test_memory_reuse_limits_live_ciphertexts(self, noiseless_backend):
        # A long chain of multiplies by constants should only ever keep a
        # couple of ciphertexts alive at a time thanks to retirement.
        program = EvaProgram("chain", vec_size=8, default_scale=20)
        with program:
            x = input_encrypted("x", 20)
            node = x
            for _ in range(30):
                node = node * 0.9
            output("out", node, 20)
        compiled = program.compile()
        executor = Executor(compiled, noiseless_backend)
        result = executor.execute({"x": np.ones(8)})
        assert result.stats.peak_live_ciphertexts <= 5

    def test_parallel_execution_matches_serial(self, simple_pyeva_program, simple_inputs):
        compiled = simple_pyeva_program.compile()
        serial = Executor(compiled, MockBackend(error_model="none")).execute(simple_inputs)
        parallel = Executor(compiled, MockBackend(error_model="none"), threads=4).execute(simple_inputs)
        np.testing.assert_allclose(parallel["w"], serial["w"], rtol=1e-9)

    def test_output_truncated_to_vec_size(self, simple_pyeva_program, simple_inputs, mock_backend):
        compiled = simple_pyeva_program.compile()
        result = Executor(compiled, mock_backend).execute(simple_inputs)
        assert result["w"].shape == (16,)

    def test_default_backend_is_mock(self, simple_pyeva_program, simple_inputs):
        compiled = simple_pyeva_program.compile()
        result = Executor(compiled).execute(simple_inputs)
        assert "w" in result.outputs
