"""Cross-module integration tests: frontend -> compiler -> serialization -> executor."""

import numpy as np

from repro.backend import MockBackend
from repro.core import CompilerOptions, Executor, compile_program, execute_reference, simulate_schedule
from repro.core.serialization import load, save
from repro.frontend import EvaProgram, constant, input_encrypted, output
from repro.nn import DnnCompiler, ScaleConfig, build_lenet_small, encrypted_inference, synthetic_image_dataset, train_readout


class TestEndToEndPipelines:
    def test_serialize_compile_execute_roundtrip(self, tmp_path):
        """An input program saved to disk, reloaded, compiled, and executed."""
        program = EvaProgram("pipeline", vec_size=32, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            weights = constant(np.linspace(0, 1, 32).tolist(), 15)
            output("out", (x * weights) ** 2 + x, 25)

        path = tmp_path / "pipeline.evaproto"
        save(program.graph, path)
        restored = load(path)

        compiled = compile_program(restored, output_scales={"out": 25})
        xv = np.random.default_rng(0).uniform(-1, 1, 32)
        result = Executor(compiled, MockBackend(seed=0)).execute({"x": xv})
        reference = execute_reference(program.graph, {"x": xv})
        np.testing.assert_allclose(result["out"], reference["out"], atol=1e-3)

    def test_compiled_program_can_be_serialized(self, tmp_path):
        """The executable (post-compilation) program also round-trips to disk."""
        program = EvaProgram("exe", vec_size=16, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("out", x * x + x, 25)
        compiled = program.compile()
        path = tmp_path / "compiled.json"
        save(compiled.program, path)
        restored = load(path)
        assert restored.op_counts() == compiled.program.op_counts()

    def test_policy_comparison_full_stack(self):
        """Table 5/6 shape on a non-trivial program: EVA <= CHET in params and latency."""
        net = build_lenet_small()
        eva = DnnCompiler(ScaleConfig(), CompilerOptions(policy="eva")).compile(net)
        chet = DnnCompiler(ScaleConfig(), CompilerOptions(policy="chet")).compile(net)

        assert eva.compilation.parameters.modulus_count <= chet.compilation.parameters.modulus_count
        assert (
            eva.compilation.parameters.total_coeff_modulus_bits
            <= chet.compilation.parameters.total_coeff_modulus_bits
        )
        eva_latency = simulate_schedule(eva.compilation, threads=8, discipline="dag")
        chet_latency = simulate_schedule(chet.compilation, threads=8, discipline="kernel")
        assert eva_latency.makespan_seconds <= chet_latency.makespan_seconds

    def test_encrypted_dnn_accuracy_matches_plaintext(self):
        """Table 4 shape: encrypted accuracy equals unencrypted accuracy."""
        net = build_lenet_small()
        dataset = synthetic_image_dataset(
            num_classes=10, image_shape=(1, 8, 8), train_per_class=12, test_per_class=2, seed=3
        )
        train_readout(net, dataset, epochs=400, learning_rate=1.0)
        compiled = DnnCompiler(ScaleConfig()).compile(net)
        backend = MockBackend(seed=11)
        matches = 0
        samples = 8
        for image in dataset.test_images[:samples]:
            encrypted = int(np.argmax(encrypted_inference(compiled, image, backend=backend)))
            plaintext = net.predict(image)
            matches += int(encrypted == plaintext)
        assert matches == samples

    def test_threads_do_not_change_results(self):
        program = EvaProgram("threads", vec_size=64, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            acc = None
            for i in range(8):
                branch = (x << i) * (x << i)
                acc = branch if acc is None else acc + branch
            output("out", acc, 25)
        compiled = program.compile()
        xv = np.random.default_rng(1).uniform(-1, 1, 64)
        single = Executor(compiled, MockBackend(error_model="none")).execute({"x": xv})
        multi = Executor(compiled, MockBackend(error_model="none"), threads=8).execute({"x": xv})
        np.testing.assert_allclose(single["out"], multi["out"], rtol=1e-12)

    def test_validation_guarantee_no_backend_exceptions(self):
        """The compiler's core guarantee: a validated program never triggers a
        runtime constraint error in the backend, for either policy."""
        programs = []
        for depth in (1, 2, 3):
            program = EvaProgram(f"depth{depth}", vec_size=16, default_scale=25)
            with program:
                x = input_encrypted("x", 25)
                node = x
                for _ in range(depth):
                    node = node * node + x
                output("out", node, 25)
            programs.append(program)
        xv = np.random.default_rng(2).uniform(-0.5, 0.5, 16)
        for program in programs:
            for policy in ("eva", "chet"):
                compiled = program.compile(options=CompilerOptions(policy=policy))
                Executor(compiled, MockBackend(seed=0)).execute({"x": xv})
