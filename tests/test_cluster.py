"""Tests for sharded serving: hash ring, session store, cluster, failover."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import ClientKit, CompiledProgram, execute_reference
from repro.backend import MockBackend
from repro.core import compile_program
from repro.errors import ServingError
from repro.frontend import EvaProgram, input_encrypted, output
from repro.serving import (
    BackendSpec,
    ClusterTcpServer,
    ConsistentHashRing,
    EvaCluster,
    EvaServer,
    ServingClient,
    SessionStore,
)


def make_poly_program(name="poly", vec_size=32):
    program = EvaProgram(name, vec_size=vec_size, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("y", x * x + x + 1.0, 25)
    return program


class TestConsistentHashRing:
    def test_same_client_always_routes_to_same_shard(self):
        ring = ConsistentHashRing((0, 1, 2, 3))
        fresh = ConsistentHashRing((0, 1, 2, 3))
        for i in range(50):
            client = f"client-{i}"
            assert ring.route(client) == ring.route(client) == fresh.route(client)

    def test_all_shards_receive_clients(self):
        ring = ConsistentHashRing((0, 1, 2, 3))
        homes = {ring.route(f"client-{i}") for i in range(200)}
        assert homes == {0, 1, 2, 3}

    def test_removal_remaps_only_the_removed_shards_clients(self):
        clients = [f"client-{i}" for i in range(500)]
        ring = ConsistentHashRing((0, 1, 2, 3))
        before = {client: ring.route(client) for client in clients}
        ring.remove(2)
        for client in clients:
            after = ring.route(client)
            if before[client] == 2:
                assert after != 2
            else:
                # Anyone not on the removed shard keeps their home (and its
                # warm caches) — the property plain modulo hashing lacks.
                assert after == before[client]

    def test_addition_remaps_a_bounded_fraction(self):
        clients = [f"client-{i}" for i in range(1000)]
        ring = ConsistentHashRing((0, 1, 2, 3))
        before = {client: ring.route(client) for client in clients}
        ring.add(4)
        moved = sum(1 for client in clients if ring.route(client) != before[client])
        # Expected K/N = 1/5 of clients move to the new shard; allow slack
        # for vnode placement variance but stay well under a full reshuffle.
        assert moved / len(clients) <= 0.35
        # ... and whoever moved, moved to the new shard, nowhere else.
        for client in clients:
            after = ring.route(client)
            if after != before[client]:
                assert after == 4

    def test_empty_ring_raises(self):
        ring = ConsistentHashRing()
        with pytest.raises(LookupError):
            ring.route("anyone")

    def test_add_remove_roundtrip_restores_mapping(self):
        clients = [f"client-{i}" for i in range(100)]
        ring = ConsistentHashRing((0, 1, 2))
        before = {client: ring.route(client) for client in clients}
        ring.add(3)
        ring.remove(3)
        assert {client: ring.route(client) for client in clients} == before


class TestBackendSpec:
    def test_builds_mock_variants(self):
        assert BackendSpec("mock", seed=3).build().error_model == "gaussian"
        exact = BackendSpec("mock-exact", seed=3, op_latency=0.001).build()
        assert exact.error_model == "none"
        assert exact.op_latency == 0.001

    def test_unknown_backend_rejected(self):
        with pytest.raises(Exception):
            BackendSpec("nope").build()

    def test_negative_op_latency_rejected(self):
        with pytest.raises(ValueError):
            MockBackend(op_latency=-1.0).create_context(
                compile_program(make_poly_program().graph).parameters
            )


class TestSessionStore:
    @pytest.fixture
    def compilation(self):
        return compile_program(make_poly_program().graph)

    def test_save_load_roundtrip(self, tmp_path, compilation):
        store = SessionStore(tmp_path)
        blob = {"scheme": "mock", "error_model": "none"}
        store.save("alice", compilation, blob, program="poly")
        assert store.load("alice", compilation) == blob
        assert len(store) == 1

    def test_missing_record_returns_none(self, tmp_path, compilation):
        store = SessionStore(tmp_path)
        assert store.load("nobody", compilation) is None

    def test_clients_are_isolated(self, tmp_path, compilation):
        store = SessionStore(tmp_path)
        store.save("alice", compilation, {"scheme": "mock", "who": "a"})
        store.save("bob", compilation, {"scheme": "mock", "who": "b"})
        assert store.load("alice", compilation)["who"] == "a"
        assert store.load("bob", compilation)["who"] == "b"

    def test_resave_merges_program_names(self, tmp_path, compilation):
        store = SessionStore(tmp_path)
        store.save("alice", compilation, {"scheme": "mock"}, program="a")
        store.save("alice", compilation, {"scheme": "mock"}, program="b")
        (record,) = store.records()
        assert record["programs"] == ["a", "b"]

    def test_corrupt_record_reads_as_missing(self, tmp_path, compilation):
        store = SessionStore(tmp_path)
        store.save("alice", compilation, {"scheme": "mock"})
        store.path_for("alice", compilation).write_text("{not json")
        assert store.load("alice", compilation) is None
        assert len(store) == 0

    def test_delete_client(self, tmp_path, compilation):
        store = SessionStore(tmp_path)
        store.save("alice", compilation, {"scheme": "mock"})
        store.save("bob", compilation, {"scheme": "mock"})
        assert store.delete("alice") == 1
        assert store.load("alice", compilation) is None
        assert store.load("bob", compilation) is not None

    def test_shared_directory_between_stores(self, tmp_path, compilation):
        """Two store objects (= two shard processes) see each other's writes."""
        writer = SessionStore(tmp_path)
        reader = SessionStore(tmp_path)
        writer.save("alice", compilation, {"scheme": "mock", "n": 1})
        assert reader.load("alice", compilation) == {"scheme": "mock", "n": 1}


class TestSessionPersistence:
    """EvaServer + SessionStore: encrypted sessions survive a restart."""

    def _encrypted_roundtrip(self, server, kit, values):
        bundle = kit.encrypt_inputs({"x": values})
        response = server.request_encrypted(
            "poly", kit.bundle_to_wire(bundle), client_id=kit.client_id
        )
        wire = response.to_wire()
        response.release()
        return kit.decrypt_outputs(kit.outputs_from_wire(wire))

    def test_session_survives_server_restart(self, tmp_path):
        program = make_poly_program()
        store = SessionStore(tmp_path)
        compiled = CompiledProgram.compile(program.graph)
        kit = ClientKit(
            compiled, backend=MockBackend(error_model="none"), client_id="alice"
        )
        expected = execute_reference(program.graph, {"x": [1.0, 2.0, 4.0, 8.0]})["y"][:4]

        first = EvaServer(
            backend=MockBackend(error_model="none"), session_store=store
        )
        first.register("poly", program)
        first.create_session("poly", "alice", kit.export_evaluation_keys())
        outputs = self._encrypted_roundtrip(first, kit, [1.0, 2.0, 4.0, 8.0])
        np.testing.assert_allclose(outputs["y"][:4], expected, atol=1e-6)
        first.close()

        # A brand-new server over the same store directory: the client does
        # NOT create a session again, yet its encrypted request is served —
        # the persisted key blob rebuilt the evaluation context lazily.
        second = EvaServer(
            backend=MockBackend(error_model="none"), session_store=store
        )
        second.register("poly", program)
        outputs = self._encrypted_roundtrip(second, kit, [1.0, 2.0, 4.0, 8.0])
        np.testing.assert_allclose(outputs["y"][:4], expected, atol=1e-6)
        assert second.sessions.summary()["client_keyed"] == 1
        second.close()

    def test_without_store_restart_loses_the_session(self):
        program = make_poly_program()
        kit = ClientKit(
            CompiledProgram.compile(program.graph),
            backend=MockBackend(error_model="none"),
            client_id="alice",
        )
        server = EvaServer(backend=MockBackend(error_model="none"))
        server.register("poly", program)
        bundle = kit.encrypt_inputs({"x": [1.0]})
        with pytest.raises(ServingError, match="not registered evaluation keys"):
            server.request_encrypted(
                "poly", kit.bundle_to_wire(bundle), client_id="alice"
            )
        server.close()

    def test_corrupt_record_degrades_to_missing_session(self, tmp_path):
        program = make_poly_program()
        store = SessionStore(tmp_path)
        kit = ClientKit(
            CompiledProgram.compile(program.graph),
            backend=MockBackend(error_model="none"),
            client_id="alice",
        )
        server = EvaServer(
            backend=MockBackend(error_model="none"), session_store=store
        )
        server.register("poly", program)
        server.create_session("poly", "alice", kit.export_evaluation_keys())
        # Corrupt the persisted blob, then restart: the restore must degrade
        # to the ordinary "create a session first" error, not crash.
        for path in Path(tmp_path).glob("*.json"):
            path.write_text("garbage")
        fresh = EvaServer(
            backend=MockBackend(error_model="none"), session_store=store
        )
        fresh.register("poly", program)
        bundle = kit.encrypt_inputs({"x": [1.0]})
        with pytest.raises(ServingError, match="not registered evaluation keys"):
            fresh.request_encrypted(
                "poly", kit.bundle_to_wire(bundle), client_id="alice"
            )
        server.close()
        fresh.close()

    def test_create_session_persists_blob(self, tmp_path):
        program = make_poly_program()
        store = SessionStore(tmp_path)
        kit = ClientKit(
            CompiledProgram.compile(program.graph),
            backend=MockBackend(error_model="none"),
            client_id="alice",
        )
        server = EvaServer(
            backend=MockBackend(error_model="none"), session_store=store
        )
        server.register("poly", program)
        assert len(store) == 0
        server.create_session("poly", "alice", kit.export_evaluation_keys())
        (record,) = store.records()
        assert record["client_id"] == "alice"
        assert record["programs"] == ["poly"]
        assert server.stats()["session_store"]["records"] == 1
        server.close()


@pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")
class TestClusterEndToEnd:
    """One 2-shard cluster exercised end to end, including a shard kill."""

    def test_cluster_serves_routes_and_survives_shard_loss(self, tmp_path):
        program = make_poly_program()
        expected = execute_reference(program.graph, {"x": [1.0, 2.0]})["y"][:2]
        cluster = EvaCluster(
            shards=2,
            backend=BackendSpec("mock-exact", seed=7),
            session_dir=tmp_path,
            batch_window=0.0,
        )
        cluster.register("poly", program)
        cluster.start()
        router = None
        try:
            # Plaintext requests route per client and match the reference.
            for client_id in ("alice", "bob"):
                outputs = cluster.request(
                    "poly", {"x": [1.0, 2.0]}, client_id=client_id
                )
                np.testing.assert_allclose(outputs["y"][:2], expected, atol=1e-6)
                assert cluster.shard_for(client_id) == cluster.shard_for(client_id)

            # The router speaks the same wire protocol, plus `route`.
            router = ClusterTcpServer(cluster, port=0)
            router.start_background()
            host, port = router.address
            with ServingClient(host, port) as client:
                assert client.ping()
                assert client.programs() == ["poly"]
                route = client.route("alice")
                assert route["shard"] == cluster.shard_for("alice")
                assert route["pid"] == cluster.shard_infos()[route["shard"]]["pid"]
                outputs = client.submit("poly", {"x": [1.0, 2.0]}, client_id="alice")
                np.testing.assert_allclose(outputs["y"][:2], expected, atol=1e-6)
                stats = client.stats()
                assert stats["live"] == [0, 1]

            # Encrypted session for alice (keys stay client-side).
            kit = ClientKit(
                CompiledProgram.compile(program.graph),
                backend=MockBackend(error_model="none"),
                client_id="alice",
            )
            session = cluster.create_session("poly", kit)
            assert session["program"] == "poly"
            outputs = cluster.request_encrypted("poly", kit, {"x": [1.0, 2.0]})
            np.testing.assert_allclose(outputs["y"][:2], expected, atol=1e-6)

            # Kill alice's shard. Her next encrypted request must reroute to
            # the surviving shard, which rebuilds her session from the
            # persisted store — no new create_session.
            victim = cluster.shard_for("alice")
            cluster.kill_shard(victim)
            outputs = cluster.request_encrypted("poly", kit, {"x": [1.0, 2.0]})
            np.testing.assert_allclose(outputs["y"][:2], expected, atol=1e-6)
            survivor = cluster.shard_for("alice")
            assert survivor != victim
            stats = cluster.stats()
            assert stats["live"] == [survivor]
            assert stats["dead"] == [victim]
            # The survivor's session cache now holds the restored session.
            per_shard = stats["per_shard"][str(survivor)]
            assert per_shard["sessions"]["client_keyed"] >= 1

            # Plaintext clients keep working after the loss too.
            outputs = cluster.request("poly", {"x": [1.0, 2.0]}, client_id="bob")
            np.testing.assert_allclose(outputs["y"][:2], expected, atol=1e-6)
        finally:
            if router is not None:
                router.shutdown()
            cluster.close()

    def test_kill_then_rejoin_restores_membership(self, tmp_path):
        """The full chaos loop in-process: kill -> rejoin -> same home serves."""
        program = make_poly_program()
        expected = execute_reference(program.graph, {"x": [1.0, 2.0]})["y"][:2]
        cluster = EvaCluster(
            shards=2,
            backend=BackendSpec("mock-exact", seed=7),
            session_dir=tmp_path,
            batch_window=0.0,
        )
        cluster.register("poly", program)
        cluster.start()
        try:
            outputs = cluster.request("poly", {"x": [1.0, 2.0]}, client_id="alice")
            np.testing.assert_allclose(outputs["y"][:2], expected, atol=1e-6)
            victim = cluster.shard_for("alice")
            old_pid = cluster.shard_infos()[victim]["pid"]
            cluster.kill_shard(victim)
            statuses = {h["index"]: h["status"] for h in cluster.check_health()}
            assert statuses[victim] == "dead"

            info = cluster.rejoin_shard(victim)
            assert info["respawned"] and info["pid"] != old_pid
            # Consistent hashing puts alice right back on her old home, and
            # the respawned shard serves her (cached connections to the dead
            # process were invalidated by the generation bump).
            assert cluster.shard_for("alice") == victim
            outputs = cluster.request("poly", {"x": [1.0, 2.0]}, client_id="alice")
            np.testing.assert_allclose(outputs["y"][:2], expected, atol=1e-6)
            stats = cluster.stats()
            assert stats["live"] == [0, 1] and stats["dead"] == []
            statuses = {h["index"]: h["status"] for h in cluster.check_health()}
            assert statuses == {0: "live", 1: "live"}
            # Rejoining a live in-ring shard is a no-op, not an error.
            assert not cluster.rejoin_shard(victim)["respawned"]
        finally:
            cluster.close()

    def test_drain_reroutes_then_rejoin_without_respawn(self):
        program = make_poly_program()
        cluster = EvaCluster(
            shards=2, backend=BackendSpec("mock-exact", seed=7), batch_window=0.0
        )
        cluster.register("poly", program)
        cluster.start()
        try:
            home = cluster.shard_for("alice")
            info = cluster.drain_shard(home)
            assert info["status"] == "drained"
            # Drained: out of the ring (clients reroute) but still alive.
            assert cluster.shard_for("alice") != home
            statuses = {h["index"]: h["status"] for h in cluster.check_health()}
            assert statuses[home] == "drained"
            cluster.request("poly", {"x": [1.0]}, client_id="alice")
            # The last in-ring shard cannot be drained: that would be an
            # outage, not maintenance.
            survivor = cluster.shard_for("alice")
            with pytest.raises(ServingError, match="last shard"):
                cluster.drain_shard(survivor)
            info = cluster.rejoin_shard(home)
            assert not info["respawned"]
            assert cluster.shard_for("alice") == home
            cluster.request("poly", {"x": [1.0]}, client_id="alice")
            with pytest.raises(ServingError, match="no shard"):
                cluster.drain_shard(99)
        finally:
            cluster.close()

    def test_router_admin_ops_and_quota_enforcement(self, tmp_path):
        """health/drain/rejoin over the wire, plus router-level 429s."""
        from repro.errors import QuotaExceededError
        from repro.serving import FairnessPolicy

        program = make_poly_program()
        cluster = EvaCluster(
            shards=2,
            backend=BackendSpec("mock-exact", seed=7),
            session_dir=tmp_path,
            batch_window=0.0,
            fairness=FairnessPolicy(quota_rps=2.0, burst=3),
        )
        cluster.register("poly", program)
        cluster.start()
        router = None
        try:
            router = ClusterTcpServer(cluster, port=0)
            router.start_background()
            host, port = router.address
            with ServingClient(host, port) as client:
                # A pipelined burst past the quota: the router answers 429
                # with retry_after before the request costs a shard anything.
                served = throttled = 0
                retry_after = None
                for _ in range(8):
                    try:
                        client.submit("poly", {"x": [1.0]}, client_id="greedy")
                        served += 1
                    except QuotaExceededError as exc:
                        throttled += 1
                        retry_after = exc.retry_after
                # At least the burst is served; the rest is throttled modulo
                # whatever tokens refill while the loop runs (first-compile
                # roundtrips on a slow machine can fund an extra token).
                assert served + throttled == 8
                assert served >= 3 and throttled >= 1, (served, throttled)
                assert retry_after is not None and retry_after > 0.0
                # A different client proceeds while greedy is throttled.
                client.submit("poly", {"x": [1.0]}, client_id="light")

                victim = client.route("light")["shard"]
                cluster.kill_shard(victim)
                health = {h["index"]: h["status"] for h in client.health()}
                assert health[victim] == "dead"
                rejoined = client.rejoin(victim)
                assert rejoined["respawned"]
                health = {h["index"]: h["status"] for h in client.health()}
                assert set(health.values()) == {"live"}
                client.submit("poly", {"x": [1.0]}, client_id="light")
                drained = client.drain(victim)
                assert drained["status"] == "drained"
                assert client.rejoin(victim)["status"] == "rejoined"
        finally:
            if router is not None:
                router.shutdown()
            cluster.close()

    def test_drained_shard_that_dies_is_reported_dead(self):
        cluster = EvaCluster(
            shards=2, backend=BackendSpec("mock-exact", seed=7), batch_window=0.0
        )
        cluster.register("poly", make_poly_program())
        cluster.start()
        try:
            cluster.drain_shard(0)
            # The parked process crashes: health must reclassify it as dead
            # (and stats' drained/dead lists must agree), not keep reporting
            # a healthy-looking parked shard.
            cluster._handles[0].process.kill()
            cluster._handles[0].process.join(10)
            statuses = {h["index"]: h["status"] for h in cluster.check_health()}
            assert statuses[0] == "dead"
            stats = cluster.stats()
            assert 0 in stats["dead"] and 0 not in stats["drained"]
            # ... and rejoin still brings it back (respawned).
            assert cluster.rejoin_shard(0)["respawned"]
        finally:
            cluster.close()

    def test_session_ops_count_against_quota(self, tmp_path):
        """create_session is the heaviest op; it must not bypass admission."""
        from repro.errors import QuotaExceededError
        from repro.serving import FairnessPolicy

        program = make_poly_program()
        server = EvaServer(
            backend=MockBackend(error_model="none"),
            batch_window=0.0,
            fairness=FairnessPolicy(quota_rps=0.5, burst=2),
        )
        server.register("poly", program)
        kit = ClientKit(
            CompiledProgram.compile(program.graph),
            backend=MockBackend(error_model="none"),
            client_id="alice",
        )
        keys = kit.export_evaluation_keys()
        server.create_session("poly", "alice", keys)
        server.create_session("poly", "alice", keys)
        with pytest.raises(QuotaExceededError):
            server.create_session("poly", "alice", keys)
        server.close()

    def test_cluster_shares_artifact_directory(self, tmp_path):
        """Shards publish compilations into the shared artifact cache."""
        from repro.serving import ArtifactCache

        artifact_dir = tmp_path / "artifacts"
        program = make_poly_program()
        cluster = EvaCluster(
            shards=2,
            backend=BackendSpec("mock-exact", seed=7),
            batch_window=0.0,
            artifact_dir=str(artifact_dir),
        )
        cluster.register("poly", program)
        cluster.start()
        try:
            # Hit both shards (different clients) so each resolves the program.
            clients = ["alice", "bob", "carol", "dave"]
            for client_id in clients:
                cluster.request("poly", {"x": [1.0]}, client_id=client_id)
            cache = ArtifactCache(artifact_dir)
            records = cache.records()
            # One program, one signature: however many shards compiled, the
            # cache converged on a single record (atomic last-writer-wins).
            assert len(records) == 1
            assert records[0]["lane_width"] is None
        finally:
            cluster.close()

    def test_register_after_start_rejected(self):
        cluster = EvaCluster(shards=1, backend=BackendSpec("mock-exact"))
        cluster.register("poly", make_poly_program())
        cluster.start()
        try:
            with pytest.raises(ServingError, match="before the cluster starts"):
                cluster.register("other", make_poly_program())
            with pytest.raises(ServingError):
                cluster.start()
        finally:
            cluster.close()

    def test_all_shards_dead_raises(self):
        cluster = EvaCluster(
            shards=1, backend=BackendSpec("mock-exact"), retries=1
        )
        cluster.register("poly", make_poly_program())
        cluster.start()
        try:
            cluster.kill_shard(0)
            with pytest.raises(ServingError, match="no live shards"):
                cluster.request("poly", {"x": [1.0]}, client_id="alice")
        finally:
            cluster.close()


class TestClusterCli:
    def test_serve_shards_session_survives_shard_kill(self, tmp_path):
        """`repro.cli serve --shards 2 --session-dir` + kill = session survives.

        The same scenario the CI cluster-smoke job runs: two clients with
        encrypted sessions, one shard SIGKILLed, the rerouted client resumes
        (no new session) against the persisted store.
        """
        import repro
        from repro.core.serialization import save

        program = make_poly_program()
        path = tmp_path / "poly.evaproto"
        save(program.graph, path)
        session_dir = tmp_path / "sessions"
        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                str(path),
                "--port",
                "0",
                "--backend",
                "mock-exact",
                "--batch-window",
                "0",
                "--shards",
                "2",
                "--session-dir",
                str(session_dir),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = json.loads(process.stdout.readline())
            assert banner["programs"] == ["poly"]
            assert len(banner["shards"]) == 2
            host, port = banner["serving"].rsplit(":", 1)
            expected = execute_reference(program.graph, {"x": [1.0, 2.0]})["y"][:2]

            # Compile with the exact options the serve CLI builds from its
            # argparse defaults (float max_rescale_bits!), as `repro.cli
            # submit --encrypt` does — signatures must match byte for byte.
            from repro.core import CompilerOptions

            cli_options = CompilerOptions(
                policy="eva", max_rescale_bits=60.0, security_level=128
            )
            kits = {
                client_id: ClientKit(
                    CompiledProgram.compile(program.graph, options=cli_options),
                    backend=MockBackend(error_model="none"),
                    client_id=client_id,
                )
                for client_id in ("alice", "bob")
            }
            with ServingClient(host, int(port)) as client:
                for client_id, kit in kits.items():
                    client.create_session("poly", kit)
                    outputs = client.submit_encrypted("poly", kit, {"x": [1.0, 2.0]})
                    np.testing.assert_allclose(outputs["y"][:2], expected, atol=1e-6)
                victim = client.route("alice")
                os.kill(victim["pid"], signal.SIGKILL)
                time.sleep(0.2)
                # Resume WITHOUT create_session: the rerouted shard restores
                # alice's session from the shared --session-dir store.
                outputs = client.submit_encrypted(
                    "poly", kits["alice"], {"x": [1.0, 2.0]}
                )
                np.testing.assert_allclose(outputs["y"][:2], expected, atol=1e-6)
                rerouted = client.route("alice")
                assert rerouted["pid"] != victim["pid"]
                # Bob keeps working too (restored or still attached).
                outputs = client.submit_encrypted(
                    "poly", kits["bob"], {"x": [1.0, 2.0]}
                )
                np.testing.assert_allclose(outputs["y"][:2], expected, atol=1e-6)
            assert session_dir.exists() and any(session_dir.glob("*.json"))

            # The CLI resume flag rides the same restore path: no session op,
            # straight to an encrypted submit against the surviving shard.
            inputs_path = tmp_path / "inputs.json"
            inputs_path.write_text(json.dumps({"x": [1.0, 2.0]}))
            result = subprocess.run(
                [
                    sys.executable,
                    "-m",
                    "repro.cli",
                    "submit",
                    "poly",
                    "--inputs",
                    str(inputs_path),
                    "--port",
                    port,
                    "--encrypt",
                    "--resume",
                    "--program-file",
                    str(path),
                    "--backend",
                    "mock-exact",
                    "--client",
                    "alice",
                ],
                capture_output=True,
                text=True,
                env=env,
                timeout=60,
            )
            assert result.returncode == 0, result.stderr
            payload = json.loads(result.stdout)
            np.testing.assert_allclose(
                payload["outputs"]["y"][:2], expected, atol=1e-6
            )
        finally:
            process.terminate()
            process.wait(20)


class TestClusterTelemetry:
    """The telemetry plane across shard processes: aggregation, traces, slow."""

    def _make_cluster(self, tmp_path=None, **kwargs):
        cluster = EvaCluster(
            shards=2,
            backend=BackendSpec("mock-exact", seed=7),
            session_dir=tmp_path,
            batch_window=0.0,
            **kwargs,
        )
        cluster.register("poly", make_poly_program())
        cluster.start()
        return cluster

    def _two_homed_clients(self, cluster):
        """One client id homed on each of the two shards."""
        chosen = {}
        for i in range(64):
            client_id = f"probe-{i}"
            chosen.setdefault(cluster.shard_for(client_id), client_id)
            if len(chosen) == 2:
                break
        assert len(chosen) == 2, "could not find clients covering both shards"
        return [chosen[index] for index in sorted(chosen)]

    def test_metrics_aggregate_across_shards_with_correct_bucket_math(self):
        from repro.serving.telemetry import percentile_from_buckets

        cluster = self._make_cluster()
        try:
            clients = self._two_homed_clients(cluster)
            for client_id in clients:
                for _ in range(3):
                    cluster.request("poly", {"x": [1.0, 2.0]}, client_id=client_id)
            snapshot = cluster.metrics_snapshot()
            counters = {
                (c["name"], c["labels"].get("shard"), c["labels"].get("client")): c[
                    "value"
                ]
                for c in snapshot["counters"]
            }
            # Per-shard series survive aggregation and the unlabeled
            # aggregate sums them.
            for shard, client_id in enumerate(clients):
                assert (
                    counters[("serving.requests.submitted", str(shard), client_id)]
                    == 3
                )
                assert (
                    counters[("serving.requests.submitted", None, client_id)] == 3
                )
            for name in ("serving.queue.seconds", "serving.execute.seconds"):
                per_shard = [
                    h
                    for h in snapshot["histograms"]
                    if h["name"] == name and "shard" in h["labels"]
                ]
                aggregate = [
                    h
                    for h in snapshot["histograms"]
                    if h["name"] == name and "shard" not in h["labels"]
                ]
                assert {h["labels"]["shard"] for h in per_shard} == {"0", "1"}
                assert sum(h["count"] for h in per_shard) == 6
                # One aggregate series per (client, program) label set; the
                # two clients' series together cover all six requests.
                assert sum(h["count"] for h in aggregate) == 6
                for agg in aggregate:
                    assert agg["count"] == 3
                    # The reported p95 must be exactly the bucket math over
                    # the merged buckets — recompute it and compare.
                    bounds = [b for b, _ in agg["buckets"] if b is not None]
                    counts = [c for b, c in agg["buckets"] if b is not None]
                    counts.append(
                        next((c for b, c in agg["buckets"] if b is None), 0)
                    )
                    assert agg["p95"] == pytest.approx(
                        percentile_from_buckets(
                            tuple(bounds), counts, agg["count"], 95
                        ),
                        rel=1e-9,
                    )
        finally:
            cluster.close()

    def test_traced_request_survives_failover_with_one_trace_id(self, tmp_path):
        cluster = self._make_cluster(tmp_path)
        try:
            victim_client = self._two_homed_clients(cluster)[0]
            victim = cluster.shard_for(victim_client)
            cluster.kill_shard(victim)
            # Minted before the retry loop: the TransportError failover must
            # not change the id, and the successful attempt's spans land on
            # the survivor under it.
            cluster.request(
                "poly", {"x": [1.0, 2.0]}, client_id=victim_client, trace=True
            )
            trace_id = cluster.last_trace_id
            assert trace_id is not None
            assert cluster.shard_for(victim_client) != victim
            trace = cluster.trace_of(trace_id)
            assert trace is not None and trace["trace_id"] == trace_id
            stages = {span["stage"] for span in trace["spans"]}
            assert "execute" in stages
            survivor = cluster.shard_for(victim_client)
            assert all(
                span["shard"] == survivor
                for span in trace["spans"]
                if "shard" in span
            )
        finally:
            cluster.close()

    def test_restored_session_trace_includes_session_restore_span(self, tmp_path):
        cluster = self._make_cluster(tmp_path)
        try:
            program = make_poly_program()
            kit = ClientKit(
                CompiledProgram.compile(program.graph),
                backend=MockBackend(error_model="none"),
                client_id="alice",
            )
            cluster.create_session("poly", kit)
            cluster.request_encrypted("poly", kit, {"x": [1.0, 2.0]})
            victim = cluster.shard_for("alice")
            cluster.kill_shard(victim)
            # The rerouted shard restores alice's session from the persisted
            # store; the trace must show that stage.
            cluster.request_encrypted(
                "poly", kit, {"x": [1.0, 2.0]}, trace=True
            )
            trace = cluster.trace_of(cluster.last_trace_id)
            assert trace is not None
            stages = {span["stage"] for span in trace["spans"]}
            assert "session_restore" in stages, stages
            assert "execute" in stages
        finally:
            cluster.close()

    def test_router_quota_rejection_echoes_trace_id(self):
        from repro.errors import QuotaExceededError
        from repro.serving import FairnessPolicy

        cluster = self._make_cluster(
            fairness=FairnessPolicy(quota_rps=0.001, burst=1.0)
        )
        router = None
        try:
            router = ClusterTcpServer(cluster, port=0)
            router.start_background()
            host, port = router.address
            with ServingClient(host, port) as client:
                client.submit(
                    "poly", {"x": [1.0, 2.0]}, client_id="alice", trace=True
                )
                with pytest.raises(QuotaExceededError) as info:
                    client.submit(
                        "poly", {"x": [1.0, 2.0]}, client_id="alice", trace=True
                    )
            # The 429 happened at the router, before any shard was touched —
            # the reply still carries the client-minted trace id.
            assert info.value.trace_id is not None
        finally:
            if router is not None:
                router.shutdown()
            cluster.close()

    def test_router_merges_shard_trace_into_echo(self):
        cluster = self._make_cluster()
        router = None
        try:
            router = ClusterTcpServer(cluster, port=0, slow_threshold=0.0)
            router.start_background()
            host, port = router.address
            with ServingClient(host, port) as client:
                client.submit(
                    "poly", {"x": [1.0, 2.0]}, client_id="alice", trace=True
                )
                trace = client.last_trace
                assert trace is not None
                stages = {span["stage"] for span in trace["spans"]}
                assert "router_forward" in stages
                assert "execute" in stages
                # The router-side slow ring (threshold 0) caught it too, and
                # untraced requests get a router-minted id there as well.
                client.submit("poly", {"x": [1.0, 2.0]}, client_id="alice")
                assert client.last_trace is None
                slow = client.slow()
                assert len(slow) >= 2
                assert all(record.get("trace_id") for record in slow)
                fetched = client.trace_of(trace["trace_id"])
                assert fetched is not None
                assert "router_forward" in {
                    span["stage"] for span in fetched["spans"]
                }
        finally:
            if router is not None:
                router.shutdown()
            cluster.close()


def start_remote_shard(program=None, name="poly"):
    """An in-process stand-in for `repro.cli serve` on another host."""
    from repro.serving import EvaTcpServer

    eva = EvaServer(backend=MockBackend(error_model="none", seed=7), batch_window=0.0)
    if program is not None:
        eva.register(name, program)
    tcp = EvaTcpServer(eva, port=0)
    tcp.start_background()
    return eva, tcp


class TestRemoteShards:
    """Remote endpoints on the ring: attach, drain/rejoin, wire join."""

    def _cluster(self, program, **kwargs):
        cluster = EvaCluster(
            shards=1, backend=BackendSpec("mock-exact", seed=7), batch_window=0.0, **kwargs
        )
        cluster.register("poly", program)
        cluster.start()
        return cluster

    def _client_homed_on(self, cluster, shard):
        for i in range(256):
            client_id = f"homing-{i}"
            if cluster.shard_for(client_id) == shard:
                return client_id
        raise AssertionError(f"no client routed to shard {shard}")

    def test_attach_serves_drains_and_rejoins_without_respawn(self, tmp_path):
        """The chaos loop for a shard the router cannot respawn."""
        program = make_poly_program()
        expected = execute_reference(program.graph, {"x": [1.0, 2.0]})["y"][:2]
        eva, tcp = start_remote_shard(program)
        cluster = self._cluster(program)
        try:
            host, port = tcp.address
            info = cluster.attach_shard(host, port)
            assert info == {
                "shard": 1, "status": "joined", "mode": "remote",
                "host": host, "port": port,
            }
            assert cluster.stats()["live"] == [0, 1]
            statuses = {h["index"]: h for h in cluster.check_health()}
            assert statuses[1]["status"] == "live"
            assert statuses[1]["mode"] == "remote" and statuses[1]["pid"] is None

            client_id = self._client_homed_on(cluster, 1)
            outputs = cluster.request("poly", {"x": [1.0, 2.0]}, client_id=client_id)
            np.testing.assert_allclose(outputs["y"][:2], expected, atol=1e-6)
            # The request was actually served by the remote endpoint.
            assert eva.stats()["engine"]["completed"] >= 1

            # Remote shards have no process to kill; the graceful ops work.
            with pytest.raises(ServingError, match="remote"):
                cluster.kill_shard(1)
            assert cluster.drain_shard(1)["status"] == "drained"
            assert cluster.shard_for(client_id) == 0
            cluster.request("poly", {"x": [1.0, 2.0]}, client_id=client_id)
            info = cluster.rejoin_shard(1)
            assert not info["respawned"] and info["mode"] == "remote"
            assert cluster.shard_for(client_id) == 1
            cluster.request("poly", {"x": [1.0, 2.0]}, client_id=client_id)

            # Re-attaching a known endpoint is the remote rejoin, not a new
            # shard; a brand-new endpoint gets the next free index.
            cluster.drain_shard(1)
            assert cluster.attach_shard(host, port)["shard"] == 1
            assert cluster.stats()["live"] == [0, 1]

            # When the endpoint goes away the health loop demotes it and its
            # clients fail over to the surviving local shard.  (A real process
            # death severs established sockets; the in-process stand-in's
            # daemon handler threads outlive shutdown(), so drop the cached
            # probe connection to emulate the broken link.)
            tcp.shutdown()
            tcp.server_close()
            eva.close()
            cluster._drop_probe_client(1)
            statuses = {h["index"]: h["status"] for h in cluster.check_health()}
            assert statuses[1] == "dead"
            outputs = cluster.request("poly", {"x": [1.0, 2.0]}, client_id=client_id)
            np.testing.assert_allclose(outputs["y"][:2], expected, atol=1e-6)
            # ... and rejoin refuses until the endpoint answers again.
            with pytest.raises(ServingError, match="not responding"):
                cluster.rejoin_shard(1)
        finally:
            cluster.close()

    def test_attach_rejects_mismatched_program_set(self):
        program = make_poly_program()
        other = make_poly_program(name="other")
        eva, tcp = start_remote_shard(other, name="other")
        cluster = self._cluster(program)
        try:
            host, port = tcp.address
            with pytest.raises(ServingError, match="missing \\['poly'\\]"):
                cluster.attach_shard(host, port)
            with pytest.raises(ServingError, match="cannot attach"):
                cluster.attach_shard("127.0.0.1", 1)  # nothing listens there
            assert cluster.stats()["live"] == [0]
        finally:
            cluster.close()
            tcp.shutdown()
            tcp.server_close()
            eva.close()

    def test_join_over_the_wire_and_config_file(self, tmp_path):
        """`cluster join` wire op and [[remote]] config attach the same way."""
        from repro.serving import load_cluster_config

        program = make_poly_program()
        eva, tcp = start_remote_shard(program)
        host, port = tcp.address
        config = tmp_path / "cluster.toml"
        config.write_text(
            "[cluster]\nshards = 1\n\n"
            f'[[remote]]\nhost = "{host}"\nport = {port}\n'
        )
        parsed = load_cluster_config(config)
        assert parsed["cluster"] == {"shards": 1}
        assert parsed["remote"] == [(host, port)]
        assert parsed["scale"] is None

        cluster = EvaCluster(
            backend=BackendSpec("mock-exact", seed=7),
            batch_window=0.0,
            **parsed["cluster"],
            remote_shards=parsed["remote"],
        )
        cluster.register("poly", program)
        cluster.start()
        router = None
        try:
            # The [[remote]] endpoint joined during start().
            assert cluster.stats()["live"] == [0, 1]

            # A second endpoint joins live through the router wire op.
            eva2, tcp2 = start_remote_shard(program)
            try:
                router = ClusterTcpServer(cluster, port=0)
                router.start_background()
                rhost, rport = router.address
                with ServingClient(rhost, rport) as client:
                    info = client.join(*tcp2.address)
                    assert info["shard"] == 2 and info["mode"] == "remote"
                    assert client.stats()["live"] == [0, 1, 2]
                    client.submit("poly", {"x": [1.0, 2.0]}, client_id="alice")
            finally:
                tcp2.shutdown()
                tcp2.server_close()
                eva2.close()
        finally:
            if router is not None:
                router.shutdown()
            cluster.close()
            tcp.shutdown()
            tcp.server_close()
            eva.close()

    def test_health_probe_reuses_its_connection(self):
        """Steady-state probing must not open a connection per probe."""
        program = make_poly_program()
        eva, tcp = start_remote_shard(program)
        cluster = self._cluster(program)
        try:
            cluster.attach_shard(*tcp.address)
            cluster.check_health()
            opened = tcp._conn_seq
            for _ in range(5):
                cluster.check_health()
            # The attach probe and the first health probe may each have
            # connected once; five more probe rounds add none.
            assert tcp._conn_seq == opened
        finally:
            cluster.close()
            tcp.shutdown()
            tcp.server_close()
            eva.close()


class TestAutoscaling:
    """ScalePolicy hysteresis: watermark streaks, cooldown, no flapping."""

    def _policy(self, **overrides):
        from repro.serving import ScalePolicy

        fields = dict(
            high_queue_depth=10.0,
            low_queue_depth=1.0,
            min_shards=1,
            max_shards=3,
            observations=2,
            cooldown=3600.0,
        )
        fields.update(overrides)
        return ScalePolicy(**fields)

    def test_scale_up_down_rejoin_with_hysteresis_and_cooldown(self):
        cluster = EvaCluster(
            shards=2,
            backend=BackendSpec("mock-exact", seed=7),
            batch_window=0.0,
            scale_policy=self._policy(),
        )
        cluster.register("poly", make_poly_program())
        cluster.start()
        try:
            # One high observation is not enough; a mid-band observation
            # resets the streak (the no-flap property).
            assert cluster.scale_tick(queue_depth=50) is None
            assert cluster.scale_tick(queue_depth=5) is None
            assert cluster.scale_tick(queue_depth=50) is None
            action = cluster.scale_tick(queue_depth=50)
            assert action["action"] == "up" and action["reason"] == "spawn"
            assert action["shard"] == 2 and cluster.stats()["live"] == [0, 1, 2]

            # Cooldown gates the next action even with a sustained breach.
            assert cluster.scale_tick(queue_depth=50) is None
            assert cluster.scale_tick(queue_depth=50) is None
            cluster._last_scale_at = None  # test hook: expire the cooldown

            # Low-watermark streak drains the newest local shard (parked,
            # not killed)...
            assert cluster.scale_tick(queue_depth=0) is None
            action = cluster.scale_tick(queue_depth=0)
            assert action["action"] == "down" and action["shard"] == 2
            assert cluster.stats()["drained"] == [2]
            cluster._last_scale_at = None

            # ... so the next scale-up is a cheap rejoin, not a spawn.
            assert cluster.scale_tick(queue_depth=50) is None
            action = cluster.scale_tick(queue_depth=50)
            assert action["action"] == "up" and action["reason"] == "rejoin"
            assert cluster.stats()["live"] == [0, 1, 2]
            cluster._last_scale_at = None

            # max_shards caps growth even under a sustained breach.
            assert cluster.scale_tick(queue_depth=50) is None
            assert cluster.scale_tick(queue_depth=50) is None
            assert len(cluster.stats()["live"]) == 3

            # The decisions landed on the cluster's own telemetry plane.
            counters = {
                (c["name"], c["labels"].get("reason")): c["value"]
                for c in cluster.telemetry.registry.snapshot()["counters"]
            }
            assert counters[("cluster.scale.up", "spawn")] == 1
            assert counters[("cluster.scale.up", "rejoin")] == 1
            assert counters[("cluster.scale.down", "drain")] == 1
            snapshot = cluster.metrics_snapshot()
            assert any(
                c["name"] == "cluster.scale.up"
                and c["labels"].get("shard") == "cluster"
                for c in snapshot["counters"]
            )
        finally:
            cluster.close()

    def test_scale_down_never_drains_remote_or_below_min(self):
        program = make_poly_program()
        eva, tcp = start_remote_shard(program)
        cluster = EvaCluster(
            shards=1,
            backend=BackendSpec("mock-exact", seed=7),
            batch_window=0.0,
            scale_policy=self._policy(min_shards=1, cooldown=0.0, observations=1),
        )
        cluster.register("poly", program)
        cluster.start()
        try:
            cluster.attach_shard(*tcp.address)
            # Two live shards, but the only local one is the last above
            # min_shards... the remote endpoint must not be drained in its
            # place, and the local one is the last ring member candidate.
            action = cluster.scale_tick(queue_depth=0)
            assert action is None or action.get("shard") != 1
            assert 1 in cluster.stats()["live"]
        finally:
            cluster.close()
            tcp.shutdown()
            tcp.server_close()
            eva.close()

    def test_observed_queue_depth_sums_engine_backlogs(self):
        cluster = EvaCluster(
            shards=1, backend=BackendSpec("mock-exact", seed=7), batch_window=0.0
        )
        cluster.register("poly", make_poly_program())
        cluster.start()
        try:
            assert cluster._observed_queue_depth() == 0.0
            cluster.request("poly", {"x": [1.0]}, client_id="alice")
            assert cluster._observed_queue_depth() == 0.0
        finally:
            cluster.close()
