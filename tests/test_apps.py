"""Tests for the Section 8.3 applications (arithmetic, regression, image processing)."""

import numpy as np
import pytest

from repro.backend import MockBackend
from repro.core import CompilerOptions, Executor, execute_reference
from repro.apps import (
    build_harris_program,
    build_linear_regression_program,
    build_multivariate_regression_program,
    build_path_length_program,
    build_polynomial_regression_program,
    build_sobel_program,
    random_image,
    random_path,
    reference_harris,
    reference_linear_regression,
    reference_multivariate_regression,
    reference_path_length,
    reference_polynomial_regression,
    reference_sobel,
    run_application,
    sqrt_poly_reference,
)


def run_on_mock(program, inputs, seed=0):
    compiled = program.compile()
    return Executor(compiled, MockBackend(seed=seed)).execute(inputs)


class TestPathLength:
    def test_matches_reference(self):
        program = build_path_length_program(num_points=128)
        path = random_path(128, seed=1)
        result = run_on_mock(program, path)
        expected = reference_path_length(path["x"], path["y"], path["z"])
        assert result["length"][0] == pytest.approx(expected, abs=1e-2)

    def test_sqrt_approximation_reasonable(self):
        x = np.linspace(0.01, 1.0, 50)
        approx = sqrt_poly_reference(x)
        assert np.max(np.abs(approx - np.sqrt(x))) < 0.3

    def test_program_uses_rotations_and_sum(self):
        program = build_path_length_program(num_points=64)
        compiled = program.compile()
        assert len(compiled.rotation_steps) >= 6  # log2(64) reduction steps + the diff shift

    def test_lines_of_code_scale(self):
        # Table 8 reports tens of lines; the builder itself is a single screen.
        import inspect

        from repro.apps import path_length

        source = inspect.getsource(path_length.build_path_length_program)
        assert len(source.splitlines()) < 50


class TestRegression:
    def test_linear(self):
        program = build_linear_regression_program(vec_size=256)
        x = np.random.default_rng(0).uniform(-1, 1, 256)
        result = run_on_mock(program, {"x": x})
        np.testing.assert_allclose(result["prediction"], reference_linear_regression(x), atol=1e-3)

    def test_polynomial(self):
        program = build_polynomial_regression_program(vec_size=256)
        x = np.random.default_rng(1).uniform(-1, 1, 256)
        result = run_on_mock(program, {"x": x})
        np.testing.assert_allclose(
            result["prediction"], reference_polynomial_regression(x), atol=1e-3
        )

    def test_multivariate(self):
        program = build_multivariate_regression_program(vec_size=256)
        features = {f"x{i}": np.random.default_rng(i).uniform(-1, 1, 256) for i in range(5)}
        result = run_on_mock(program, features)
        np.testing.assert_allclose(
            result["prediction"], reference_multivariate_regression(features), atol=1e-3
        )

    def test_polynomial_horner_depth(self):
        program = build_polynomial_regression_program(vec_size=64)
        assert program.graph.multiplicative_depth() <= 4

    def test_custom_coefficients(self):
        coefficients = (1.0, 0.0, -2.0)
        program = build_polynomial_regression_program(coefficients, vec_size=64)
        x = np.linspace(-1, 1, 64)
        reference = reference_polynomial_regression(x, coefficients)
        out = execute_reference(program.graph, {"x": x})["prediction"]
        np.testing.assert_allclose(out, reference, atol=1e-9)


class TestImageProcessing:
    @pytest.mark.parametrize("size", [8, 16])
    def test_sobel_matches_reference(self, size):
        program = build_sobel_program(image_size=size)
        image = random_image(size, seed=2)
        result = run_on_mock(program, {"image": image.reshape(-1)})
        np.testing.assert_allclose(
            result["edges"], reference_sobel(image).reshape(-1), atol=1e-3
        )

    def test_sobel_rotation_steps(self):
        program = build_sobel_program(image_size=16)
        # The stencil's raw taps need 8 Galois keys; the BSGS planner keeps
        # only the babies {1, 2} and the giants {16, 32} (which are taps
        # themselves, so the decomposition costs no extra rotations).
        compiled = program.compile()
        assert set(compiled.rotation_steps) == {1, 2, 16, 32}
        direct = program.compile(options=CompilerOptions(bsgs_rotations="off"))
        assert set(direct.rotation_steps) == {1, 2, 16, 17, 18, 32, 33, 34}

    def test_harris_matches_reference(self):
        program = build_harris_program(image_size=8)
        image = random_image(8, seed=3)
        result = run_on_mock(program, {"image": image.reshape(-1)})
        np.testing.assert_allclose(
            result["response"], reference_harris(image).reshape(-1), atol=5e-3
        )

    def test_harris_is_more_complex_than_sobel(self):
        # The paper calls Harris one of the most complex CKKS programs; it has
        # more instructions and at least comparable multiplicative depth.
        sobel = build_sobel_program(image_size=8)
        harris = build_harris_program(image_size=8)
        assert len(harris.graph) > len(sobel.graph)
        assert harris.graph.multiplicative_depth() >= 3

    def test_harris_parameters_within_security_budget(self):
        compiled = build_harris_program(image_size=16).compile()
        assert compiled.parameters.poly_modulus_degree <= 65536


class TestRunApplicationHelper:
    def test_run_application(self):
        program = build_linear_regression_program(vec_size=64)
        x = np.linspace(-1, 1, 64)
        result = run_application(program, {"x": x}, backend=MockBackend(seed=0))
        np.testing.assert_allclose(result["prediction"], reference_linear_regression(x), atol=1e-3)

    def test_run_application_with_chet_policy(self):
        program = build_polynomial_regression_program(vec_size=64)
        x = np.linspace(-0.5, 0.5, 64)
        result = run_application(
            program, {"x": x}, backend=MockBackend(seed=0), options=CompilerOptions(policy="chet")
        )
        np.testing.assert_allclose(
            result["prediction"], reference_polynomial_regression(x), atol=1e-3
        )
