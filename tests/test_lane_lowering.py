"""Tests for lane-aware rotation lowering (LaneLoweringPass and its plumbing).

The invariant under test everywhere: a program compiled with
``lane_width=w`` computes, in every lane, exactly what the base compilation
computes on that lane's request replicated across the whole vector — so a
batched lane matches a solo run of the same request up to CKKS noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.harris import build_harris_program, reference_harris
from repro.apps.sobel import build_sobel_program, random_image, reference_sobel
from repro.backend import CkksBackend, MockBackend
from repro.core import CompilerOptions, Executor, compile_program, execute_reference
from repro.core.analysis.rotations import lane_lowered_step_pair, normalize_step
from repro.core.types import Op
from repro.errors import CompilationError
from repro.frontend import EvaProgram, input_encrypted, output
from repro.serving import SlotBatcher


def rotation_program(vec_size=64, step=3, name="rot"):
    program = EvaProgram(name, vec_size=vec_size, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("y", (x << step) * x + (x >> 1) * 0.5, 25)
    return program


def batch_and_compare(program, lane_width, requests, backend=None, atol=1e-9):
    """Compile base + lane variant, batch the requests, compare per lane."""
    backend = backend or MockBackend(error_model="none")
    base = compile_program(program.graph)
    lowered = compile_program(
        program.graph, options=CompilerOptions(lane_width=lane_width)
    )
    batcher = SlotBatcher()
    plan = batcher.plan(lowered, requests)
    assert plan is not None and plan.lane_width == lane_width
    packed = batcher.pack(plan, requests)
    result = Executor(lowered, backend).execute(packed)
    per_lane = batcher.unpack(plan, result.outputs)
    for request, outputs in zip(requests, per_lane):
        solo = Executor(base, backend).execute(request)
        for name in outputs:
            np.testing.assert_allclose(
                outputs[name], solo[name][: len(outputs[name])], atol=atol
            )
    return per_lane


class TestLaneIdentity:
    """The mask-and-combine identity, checked numerically (no compiler)."""

    @pytest.mark.parametrize("seed", range(20))
    def test_masked_rotation_equals_lane_roll(self, seed):
        rng = np.random.default_rng(seed)
        log_v = int(rng.integers(2, 8))
        vec_size = 1 << log_v
        lane_width = 1 << int(rng.integers(1, log_v + 1))
        step = int(rng.integers(-3 * vec_size, 3 * vec_size))
        values = rng.uniform(-1, 1, vec_size)

        # Ground truth: rotate each lane independently.
        lanes = values.reshape(-1, lane_width)
        expected = np.roll(lanes, -step, axis=1).reshape(-1)

        k = normalize_step(Op.ROTATE_LEFT, step, vec_size) % lane_width
        if k == 0:
            np.testing.assert_allclose(values, expected)
            return
        step_in, step_wrap = lane_lowered_step_pair(k, lane_width, vec_size)
        mask_in = np.tile(
            (np.arange(lane_width) < lane_width - k).astype(float),
            vec_size // lane_width,
        )
        combined = mask_in * np.roll(values, -step_in) + (1.0 - mask_in) * np.roll(
            values, -step_wrap
        )
        np.testing.assert_allclose(combined, expected)

    @pytest.mark.parametrize("seed", range(20))
    def test_step_pair_agrees_with_normalize_step(self, seed):
        """The pair is already normalized: normalize_step is a fixed point."""
        rng = np.random.default_rng(100 + seed)
        log_v = int(rng.integers(2, 12))
        vec_size = 1 << log_v
        lane_width = 1 << int(rng.integers(1, log_v + 1))
        k = int(rng.integers(1, lane_width)) if lane_width > 1 else None
        if k is None:
            return
        step_in, step_wrap = lane_lowered_step_pair(k, lane_width, vec_size)
        for step in (step_in, step_wrap):
            assert 0 <= step < vec_size
            assert normalize_step(Op.ROTATE_LEFT, step, vec_size) == step
        # The wrap branch is the left-normalized form of the negative step.
        assert step_wrap == normalize_step(
            Op.ROTATE_LEFT, k - lane_width, vec_size
        )

    def test_step_pair_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            lane_lowered_step_pair(0, 8, 64)
        with pytest.raises(ValueError):
            lane_lowered_step_pair(8, 8, 64)


class TestLaneLoweredCompilation:
    def test_lowered_program_has_only_masked_rotations(self):
        compiled = compile_program(
            rotation_program(vec_size=64).graph,
            options=CompilerOptions(lane_width=8),
        )
        wrap = 64 - 8
        for term in compiled.program.terms():
            if term.op.is_rotation:
                step = normalize_step(term.op, term.rotation, 64)
                # Every surviving rotation is either an in-lane step (always
                # combined with a mask) or the shared wrap-branch rotation
                # rot(vec_size - w) — never a bare cross-lane movement by a
                # lane multiple other than the wrap step.
                assert step % 8 != 0 or step == wrap
        assert compiled.lane_width == 8
        assert compiled.lane_capacity == 8

    def test_rotation_steps_cover_the_lowered_form(self):
        compiled = compile_program(
            rotation_program(vec_size=64, step=3).graph,
            options=CompilerOptions(lane_width=8),
        )
        # x << 3 keeps the in-lane step 3; x >> 1 lowers (as left 63 -> lane
        # step 7) to the in-lane step 7.  Both wrap branches share the single
        # composed step 64 - 8 = 56 instead of the legacy pair {59, 63}.
        assert {3, 7, 56} <= set(compiled.rotation_steps)
        assert not {59, 63} & set(compiled.rotation_steps)
        # The legacy mask-pair lowering (hoisting off) still emits per-step
        # wrap rotations — it is kept as the PR 7 baseline.
        legacy = compile_program(
            rotation_program(vec_size=64, step=3).graph,
            options=CompilerOptions(
                lane_width=8, hoist_rotations=False, bsgs_rotations="off"
            ),
        )
        assert {3, 59, 7, 63} <= set(legacy.rotation_steps)

    def test_full_width_lane_is_identity(self):
        program = rotation_program(vec_size=32)
        base = compile_program(program.graph)
        full = compile_program(program.graph, options=CompilerOptions(lane_width=32))
        assert base.rotation_steps == full.rotation_steps
        assert full.lane_capacity == 1
        assert SlotBatcher().inspect(full).lane_width is None

    def test_validation_and_constraints_hold(self):
        # Scale/level validation (Constraints 1-4) runs inside compile(); a
        # lowered program that reached here has passed it.  Check the scales
        # are also *executable* on the strict mock backend.
        program = rotation_program(vec_size=64)
        compiled = compile_program(program.graph, options=CompilerOptions(lane_width=8))
        xv = np.linspace(-1, 1, 64)
        result = Executor(compiled, MockBackend(error_model="none")).execute({"x": xv})
        assert result["y"].shape == (64,)

    def test_bad_lane_widths_rejected(self):
        with pytest.raises(CompilationError):
            CompilerOptions(lane_width=3)
        with pytest.raises(CompilationError):
            CompilerOptions(lane_width=0)
        with pytest.raises(CompilationError):
            compile_program(
                rotation_program(vec_size=16).graph,
                options=CompilerOptions(lane_width=32),
            )

    def test_constant_wider_than_lane_rejected(self):
        program = EvaProgram("wideconst", vec_size=32, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("y", (x << 1) * list(range(1, 17)), 25)
        with pytest.raises(CompilationError, match="lane"):
            compile_program(program.graph, options=CompilerOptions(lane_width=8))
        # The same constant is fine once the lane holds it.
        compile_program(program.graph, options=CompilerOptions(lane_width=16))

    def test_sum_requires_lowering(self):
        program = EvaProgram("sums", vec_size=16, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("y", x.sum() * 0.1, 25)
        with pytest.raises(CompilationError, match="lower_sum|SUM"):
            compile_program(
                program.graph,
                options=CompilerOptions(lane_width=4, lower_sum=False),
            )


class TestLaneBatchedExecution:
    def test_rotation_lanes_match_solo(self):
        rng = np.random.default_rng(5)
        program = rotation_program(vec_size=64)
        requests = [{"x": rng.uniform(-1, 1, 16)} for _ in range(4)]
        batch_and_compare(program, 16, requests)

    def test_sum_program_lanes_match_solo(self):
        # SUM expands to the full-width reduction; lane lowering turns it into
        # a lane-local reduction times the replication factor — exactly the
        # solo semantics of SUM on a replicated narrow input.
        program = EvaProgram("dot", vec_size=64, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            w = [0.25, -0.5, 1.0, 0.125] * 2
            output("y", (x * w).sum() * 0.01, 25)
        rng = np.random.default_rng(6)
        requests = [{"x": rng.uniform(-1, 1, 8)} for _ in range(8)]
        batch_and_compare(program, 8, requests)

    def test_narrow_requests_tile_their_lane(self):
        rng = np.random.default_rng(7)
        program = rotation_program(vec_size=64)
        # Width-4 requests in width-8 lanes: the packer tiles them, exactly
        # like the executor replicates a narrow solo input.
        requests = [{"x": rng.uniform(-1, 1, 4)} for _ in range(6)]
        batch_and_compare(program, 8, requests)

    def test_plan_rejects_requests_wider_than_lane(self):
        program = rotation_program(vec_size=64)
        lowered = compile_program(program.graph, options=CompilerOptions(lane_width=8))
        requests = [{"x": np.ones(16)}, {"x": np.ones(16)}]
        assert SlotBatcher().plan(lowered, requests) is None

    def test_lane_metadata_drives_batchability(self):
        program = rotation_program(vec_size=64)
        batcher = SlotBatcher()
        base = compile_program(program.graph)
        lowered = compile_program(program.graph, options=CompilerOptions(lane_width=8))
        assert not batcher.inspect(base).batchable
        info = batcher.inspect(lowered)
        assert info.batchable and not info.slotwise and info.lane_width == 8


class TestGoldenWorkloads:
    """Section 8's rotation-heavy kernels, batched vs solo (mock backend)."""

    IMAGE_SIZE = 8  # 64-pixel lanes keep the mock runs fast

    def _images(self, count):
        return [random_image(self.IMAGE_SIZE, seed=seed) for seed in range(count)]

    def test_sobel_batched_lanes_match_solo(self):
        lane = self.IMAGE_SIZE**2
        program = build_sobel_program(self.IMAGE_SIZE, vec_size=8 * lane)
        images = self._images(5)
        requests = [{"image": image.reshape(-1)} for image in images]
        per_lane = batch_and_compare(
            program, lane, requests, backend=MockBackend(seed=11), atol=1e-3
        )
        for image, outputs in zip(images, per_lane):
            expected = reference_sobel(image).reshape(-1)
            np.testing.assert_allclose(outputs["edges"], expected, atol=1e-2)

    def test_harris_batched_lanes_match_solo(self):
        lane = self.IMAGE_SIZE**2
        program = build_harris_program(self.IMAGE_SIZE, vec_size=4 * lane)
        images = self._images(3)
        requests = [{"image": image.reshape(-1)} for image in images]
        per_lane = batch_and_compare(
            program, lane, requests, backend=MockBackend(seed=13), atol=1e-3
        )
        for image, outputs in zip(images, per_lane):
            expected = reference_harris(image).reshape(-1)
            np.testing.assert_allclose(outputs["response"], expected, atol=1e-2)

    def test_apps_reject_too_small_vec_size(self):
        with pytest.raises(ValueError):
            build_sobel_program(8, vec_size=32)
        with pytest.raises(ValueError):
            build_harris_program(8, vec_size=32)


class TestRealCkksSpotCheck:
    def test_lane_batched_rotation_on_real_ckks(self):
        program = EvaProgram("ckks-lane", vec_size=32, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("y", (x << 1) * 0.5 + x, 25)
        options = CompilerOptions(max_rescale_bits=25, lane_width=8)
        lowered = compile_program(program.graph, options=options)
        assert lowered.lane_width == 8

        rng = np.random.default_rng(17)
        requests = [{"x": rng.uniform(-1, 1, 8)} for _ in range(4)]
        batcher = SlotBatcher()
        plan = batcher.plan(lowered, requests)
        assert plan is not None and plan.capacity == 4
        packed = batcher.pack(plan, requests)
        result = Executor(lowered, CkksBackend(seed=21)).execute(packed)
        per_lane = batcher.unpack(plan, result.outputs)
        for request, outputs in zip(requests, per_lane):
            reference = execute_reference(program.graph, request)
            assert np.max(np.abs(outputs["y"] - reference["y"][:8])) < 0.05


class TestEncryptedLaneAlignment:
    """Client-side packing aligned with the server's registered lane width."""

    def test_encrypt_packed_roundtrip_through_server(self):
        from repro.api import ClientKit, CompiledProgram
        from repro.serving import EvaServer

        program = rotation_program(vec_size=64, name="rot-enc")
        options = CompilerOptions(lane_width=16)
        backend = MockBackend(error_model="none")
        with EvaServer(backend=backend, workers=1, batch_window=0.0) as server:
            spec = server.register("rot-enc", program, lane_width=16)
            # The client compiles with the same options; signatures align.
            compiled = CompiledProgram.compile(program, options=options)
            assert compiled.signature == spec.signature
            client = ClientKit(compiled, backend=backend, client_id="alice")
            assert client.lane_width == 16
            session = server.create_session(
                "rot-enc", "alice", client.evaluation_context()
            )
            assert session["lane_width"] == 16

            rng = np.random.default_rng(29)
            requests = [{"x": rng.uniform(-1, 1, 16)} for _ in range(4)]
            bundle, plan = client.encrypt_packed(requests)
            response = server.request_encrypted("rot-enc", bundle)
            results = client.decrypt_packed(plan, response.outputs)
        base = compile_program(program.graph)
        for request, outputs in zip(requests, results):
            solo = Executor(base, MockBackend(error_model="none")).execute(request)
            np.testing.assert_allclose(outputs["y"], solo["y"][:16], atol=1e-9)

    def test_unaligned_client_bundle_rejected(self):
        from repro.api import ClientKit, CompiledProgram
        from repro.errors import ServingError
        from repro.serving import EvaServer

        program = rotation_program(vec_size=64, name="rot-mis")
        backend = MockBackend(error_model="none")
        with EvaServer(backend=backend, workers=1, batch_window=0.0) as server:
            server.register("rot-mis", program, lane_width=16)
            # Client compiled *without* the lane width: different signature.
            compiled = CompiledProgram.compile(program)
            client = ClientKit(compiled, backend=backend, client_id="bob")
            server.create_session("rot-mis", "bob", client.evaluation_context())
            bundle = client.encrypt_inputs({"x": np.linspace(-1, 1, 64)})
            with pytest.raises(ServingError, match="different compilation"):
                server.request_encrypted("rot-mis", bundle)
