"""Unit tests for the graph transformation passes of Figure 4.

The tests reproduce the paper's worked examples: x^2*y^3 (Figure 2),
x^2 + x (Figure 3), and x^2 + x + x (Figure 5), and check the structural
properties each pass is supposed to establish.
"""

import pytest

from repro.core.analysis import compute_levels, compute_scales
from repro.core.analysis.levels import compute_rescale_chains, output_chains
from repro.core.analysis.validation import compute_polynomial_counts
from repro.core.ir import Program
from repro.core.rewrite import (
    AlwaysRescalePass,
    EagerModSwitchPass,
    ExpandSumPass,
    LazyModSwitchPass,
    MatchScalePass,
    RelinearizePass,
    RemoveCopyPass,
    WaterlineRescalePass,
)
from repro.core.rewrite.framework import PassContext, waterline_of
from repro.core.types import Op, ValueType


def count_ops(program: Program, op: Op) -> int:
    return sum(1 for t in program.terms() if t.op is op)


def make_context(program: Program, **kwargs) -> PassContext:
    defaults = dict(max_rescale_bits=60.0, waterline_bits=waterline_of(program))
    defaults.update(kwargs)
    return PassContext(**defaults)


class TestWaterlineRescale:
    def test_x2y3_inserts_two_rescales(self, x2y3_program):
        # Figure 2(d): with x at 2^60 and y at 2^30, only the x^2 product and
        # the final product are rescaled (by s_f = 2^60).
        context = make_context(x2y3_program)
        WaterlineRescalePass().run(x2y3_program, context)
        assert count_ops(x2y3_program, Op.RESCALE) == 2
        for term in x2y3_program.terms():
            if term.op is Op.RESCALE:
                assert term.rescale_value == 60.0

    def test_no_rescale_when_below_waterline(self):
        program = Program("p", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=20)
        program.set_output("out", program.make_term(Op.MULTIPLY, [x, x]), scale=20)
        WaterlineRescalePass().run(program, make_context(program))
        assert count_ops(program, Op.RESCALE) == 0

    def test_repeated_rescale_for_very_large_scales(self):
        program = Program("p", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=50)
        y = program.input("y", ValueType.CIPHER, scale=100)
        program.set_output("out", program.make_term(Op.MULTIPLY, [x, y]), scale=30)
        context = make_context(program, waterline_bits=20.0)
        WaterlineRescalePass().run(program, context)
        # 150 bits of scale can absorb two 60-bit rescales before hitting 20.
        assert count_ops(program, Op.RESCALE) == 2

    def test_scales_stay_at_or_above_waterline(self, x2y3_program):
        context = make_context(x2y3_program)
        WaterlineRescalePass().run(x2y3_program, context)
        scales = compute_scales(x2y3_program)
        for term in x2y3_program.terms():
            if term.value_type is ValueType.CIPHER and term.is_instruction:
                assert scales[term.id] >= 30.0 - 1e-9

    def test_output_chain_not_longer_than_multiplicative_depth(self, x2y3_program):
        # The paper's first key insight: |c_o| <= multiplicative depth.
        depth = x2y3_program.multiplicative_depth()
        WaterlineRescalePass().run(x2y3_program, make_context(x2y3_program))
        chains = output_chains(x2y3_program, strict=False)
        assert len(chains["out"]) <= depth


class TestAlwaysRescale:
    def test_rescale_after_every_multiply(self, x2y3_program):
        AlwaysRescalePass().run(x2y3_program, make_context(x2y3_program))
        assert count_ops(x2y3_program, Op.RESCALE) == 4

    def test_rescale_value_is_min_operand_scale(self, x2y3_program):
        AlwaysRescalePass().run(x2y3_program, make_context(x2y3_program))
        values = sorted(
            t.rescale_value for t in x2y3_program.terms() if t.op is Op.RESCALE
        )
        # x^2 rescales by 60; y^2, y^3 by 30; the final product by min of both sides.
        assert values.count(30.0) >= 2
        assert 60.0 in values


class TestModSwitchInsertion:
    def _prepare(self, program: Program) -> PassContext:
        context = make_context(program)
        WaterlineRescalePass().run(program, context)
        return context

    def test_eager_makes_chains_conform(self, x2y3_program):
        context = self._prepare(x2y3_program)
        EagerModSwitchPass().run(x2y3_program, context)
        # strict chain computation raises if Constraint 1 is not satisfiable.
        compute_rescale_chains(x2y3_program, strict=True)

    def test_lazy_makes_chains_conform(self, x2y3_program):
        context = self._prepare(x2y3_program)
        LazyModSwitchPass().run(x2y3_program, context)
        compute_rescale_chains(x2y3_program, strict=True)

    def test_binary_operand_levels_match(self, x2y3_program):
        context = self._prepare(x2y3_program)
        EagerModSwitchPass().run(x2y3_program, context)
        levels = compute_levels(x2y3_program)
        for term in x2y3_program.terms():
            cipher_args = [a for a in term.args if a.value_type is ValueType.CIPHER]
            if term.op.is_binary_arith and len(cipher_args) == 2:
                assert levels[cipher_args[0].id] == levels[cipher_args[1].id]

    def test_eager_uses_no_more_switches_than_lazy(self):
        # Figure 5: x^2 + x + x — eager shares a single MOD_SWITCH while lazy
        # inserts one per consuming edge.
        def build():
            program = Program("x2xx", vec_size=8)
            x = program.input("x", ValueType.CIPHER, scale=40)
            x2 = program.make_term(Op.MULTIPLY, [x, x])
            add1 = program.make_term(Op.ADD, [x2, x])
            add2 = program.make_term(Op.ADD, [add1, x])
            program.set_output("out", add2, scale=30)
            return program

        eager = build()
        context = make_context(eager, waterline_bits=20.0, rescale_bits=40.0, max_rescale_bits=40.0)
        WaterlineRescalePass().run(eager, context)
        EagerModSwitchPass().run(eager, context)

        lazy = build()
        context = make_context(lazy, waterline_bits=20.0, rescale_bits=40.0, max_rescale_bits=40.0)
        WaterlineRescalePass().run(lazy, context)
        LazyModSwitchPass().run(lazy, context)

        assert count_ops(eager, Op.MOD_SWITCH) <= count_ops(lazy, Op.MOD_SWITCH)
        assert count_ops(eager, Op.MOD_SWITCH) >= 1


class TestMatchScale:
    def test_x2_plus_x_gets_scale_boost(self, x2_plus_x_program):
        # Figure 3(c): the x operand of the ADD is multiplied by a constant 1
        # at scale 2^30 instead of introducing a rescale/modswitch.
        context = make_context(x2_plus_x_program)
        MatchScalePass().run(x2_plus_x_program, context)
        assert count_ops(x2_plus_x_program, Op.MULTIPLY) == 2
        scales = compute_scales(x2_plus_x_program)
        for term in x2_plus_x_program.terms():
            cipher_args = [a for a in term.args if a.value_type is ValueType.CIPHER]
            if term.op.is_additive and len(cipher_args) == 2:
                assert scales[cipher_args[0].id] == pytest.approx(scales[cipher_args[1].id])

    def test_no_rewrite_when_scales_match(self):
        program = Program("p", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=30)
        y = program.input("y", ValueType.CIPHER, scale=30)
        program.set_output("out", program.make_term(Op.ADD, [x, y]), scale=30)
        rewrites = MatchScalePass().run(program, make_context(program))
        assert rewrites == 0

    def test_boost_constant_scale_equals_difference(self, x2_plus_x_program):
        MatchScalePass().run(x2_plus_x_program, make_context(x2_plus_x_program))
        constants = [t for t in x2_plus_x_program.terms() if t.is_constant]
        assert any(c.scale == pytest.approx(30.0) for c in constants)


class TestRelinearize:
    def test_inserted_after_cipher_cipher_multiply(self, x2y3_program):
        RelinearizePass().run(x2y3_program, make_context(x2y3_program))
        assert count_ops(x2y3_program, Op.RELINEARIZE) == 4

    def test_not_inserted_for_cipher_plain_multiply(self):
        program = Program("p", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=30)
        c = program.constant(2.0, scale=10)
        program.set_output("out", program.make_term(Op.MULTIPLY, [x, c]), scale=30)
        RelinearizePass().run(program, make_context(program))
        assert count_ops(program, Op.RELINEARIZE) == 0

    def test_polynomial_counts_after_relinearization(self, x2y3_program):
        RelinearizePass().run(x2y3_program, make_context(x2y3_program))
        counts = compute_polynomial_counts(x2y3_program)
        for term in x2y3_program.terms():
            if term.op is Op.MULTIPLY:
                for arg in term.args:
                    if arg.value_type is ValueType.CIPHER:
                        assert counts[arg.id] == 2

    def test_idempotent(self, x2y3_program):
        context = make_context(x2y3_program)
        RelinearizePass().run(x2y3_program, context)
        rewrites = RelinearizePass().run(x2y3_program, context)
        assert rewrites == 0


class TestLoweringPasses:
    def test_expand_sum(self):
        program = Program("p", vec_size=16)
        x = program.input("x", ValueType.CIPHER, scale=30)
        total = program.make_term(Op.SUM, [x])
        program.set_output("out", total, scale=30)
        ExpandSumPass().run(program, make_context(program))
        assert count_ops(program, Op.SUM) == 0
        rotations = [t.rotation for t in program.terms() if t.op is Op.ROTATE_LEFT]
        assert sorted(rotations) == [1, 2, 4, 8]

    def test_remove_copy_and_null_rotation(self):
        program = Program("p", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=30)
        copy = program.make_term(Op.COPY, [x])
        rot0 = program.make_term(Op.ROTATE_LEFT, [copy], rotation=8)
        out = program.make_term(Op.MULTIPLY, [rot0, rot0])
        program.set_output("out", out, scale=30)
        RemoveCopyPass().run(program, make_context(program))
        ops = [t.op for t in program.terms()]
        assert Op.COPY not in ops
        assert Op.ROTATE_LEFT not in ops
