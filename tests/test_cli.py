"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.serialization import save
from repro.frontend import EvaProgram, input_encrypted, output


@pytest.fixture
def program_file(tmp_path):
    program = EvaProgram("cli_demo", vec_size=16, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("out", x * x + (x << 1), 25)
    path = tmp_path / "demo.evaproto"
    save(program.graph, path)
    return path


@pytest.fixture
def inputs_file(tmp_path):
    path = tmp_path / "inputs.json"
    path.write_text(json.dumps({"x": list(np.linspace(-1, 1, 16))}))
    return path


class TestCli:
    def test_info(self, program_file, capsys):
        assert main(["info", str(program_file)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["vec_size"] == 16
        assert report["outputs"] == ["out"]
        assert report["multiplicative_depth"] == 1

    def test_compile(self, program_file, tmp_path, capsys):
        out_path = tmp_path / "compiled.evaproto"
        assert main(["compile", str(program_file), "-o", str(out_path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert out_path.exists()
        assert report["policy"] == "eva"
        assert report["r"] >= 2

    def test_run_input_program(self, program_file, inputs_file, capsys):
        assert main(
            ["run", str(program_file), "--inputs", str(inputs_file), "--backend", "mock-exact"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        x = np.linspace(-1, 1, 16)
        expected = (x * x + np.roll(x, -1))[:8]
        np.testing.assert_allclose(report["outputs"]["out"], expected, atol=1e-6)

    def test_run_precompiled_program(self, program_file, inputs_file, tmp_path, capsys):
        compiled_path = tmp_path / "compiled.evaproto"
        assert main(["compile", str(program_file), "-o", str(compiled_path)]) == 0
        capsys.readouterr()
        assert main(
            ["run", str(compiled_path), "--inputs", str(inputs_file), "--backend", "mock-exact"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert "out" in report["outputs"]

    def test_error_reported_cleanly(self, tmp_path, capsys):
        missing = tmp_path / "missing.evaproto"
        assert main(["info", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err
