"""Unit tests for the analysis passes: scales, levels, validation, parameters, rotations."""

import pytest

from repro.core.analysis import compute_levels, compute_scales, select_rotation_steps, validate
from repro.core.analysis.levels import compute_rescale_chains, merge_chains
from repro.core.analysis.parameters import SECURITY_MAX_COEFF_MODULUS_BITS, max_modulus_bits
from repro.core.analysis.rotations import normalize_step
from repro.core.analysis.validation import compute_polynomial_counts
from repro.core.compiler import CompilerOptions, compile_program
from repro.core.ir import Program
from repro.core.types import Op, ValueType
from repro.errors import SecurityError, ValidationError


def make_program_with_rescale(rescale_bits=30.0):
    program = Program("p", vec_size=8)
    x = program.input("x", ValueType.CIPHER, scale=30)
    square = program.make_term(Op.MULTIPLY, [x, x])
    rescaled = program.make_term(Op.RESCALE, [square], rescale_value=rescale_bits)
    relin = program.make_term(Op.RELINEARIZE, [rescaled])
    program.set_output("out", relin, scale=30)
    return program


class TestScales:
    def test_multiply_adds_scales(self):
        program = Program("p", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=20)
        y = program.input("y", ValueType.CIPHER, scale=25)
        product = program.make_term(Op.MULTIPLY, [x, y])
        program.set_output("out", product, scale=20)
        scales = compute_scales(program)
        assert scales[product.id] == 45

    def test_rescale_subtracts(self):
        program = make_program_with_rescale(30.0)
        scales = compute_scales(program)
        out = program.outputs["out"]
        assert scales[out.id] == 30

    def test_add_with_plaintext_keeps_cipher_scale(self):
        program = Program("p", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=30)
        c = program.constant(1.0, scale=10)
        added = program.make_term(Op.ADD, [x, c])
        program.set_output("out", added, scale=30)
        scales = compute_scales(program)
        assert scales[added.id] == 30

    def test_rotation_preserves_scale(self):
        program = Program("p", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=30)
        rot = program.make_term(Op.ROTATE_LEFT, [x], rotation=2)
        program.set_output("out", rot, scale=30)
        assert compute_scales(program)[rot.id] == 30


class TestLevelsAndChains:
    def test_levels_increase_at_rescale_and_modswitch(self):
        program = Program("p", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=30)
        r = program.make_term(Op.RESCALE, [x], rescale_value=30.0)
        m = program.make_term(Op.MOD_SWITCH, [r])
        program.set_output("out", m, scale=30)
        levels = compute_levels(program)
        assert levels[x.id] == 0
        assert levels[r.id] == 1
        assert levels[m.id] == 2

    def test_merge_chains_with_wildcards(self):
        assert merge_chains((30.0, None), (30.0, 60.0)) == (30.0, 60.0)
        assert merge_chains((None,), (25.0,)) == (25.0,)
        assert merge_chains((30.0,), (60.0,)) is None
        assert merge_chains((30.0,), (30.0, 30.0)) is None

    def test_nonconforming_chains_raise_in_strict_mode(self):
        program = Program("p", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=30)
        y = program.input("y", ValueType.CIPHER, scale=30)
        rx = program.make_term(Op.RESCALE, [program.make_term(Op.MULTIPLY, [x, x])], rescale_value=30.0)
        added = program.make_term(Op.ADD, [rx, y])
        program.set_output("out", added, scale=30)
        with pytest.raises(ValidationError):
            compute_rescale_chains(program, strict=True)
        compute_rescale_chains(program, strict=False)


class TestValidation:
    def test_valid_program_passes(self):
        validate(make_program_with_rescale())

    def test_constraint2_scale_mismatch(self):
        program = Program("p", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=30)
        y = program.input("y", ValueType.CIPHER, scale=40)
        program.set_output("out", program.make_term(Op.ADD, [x, y]), scale=30)
        with pytest.raises(ValidationError, match="Constraint 2"):
            validate(program)

    def test_constraint3_missing_relinearization(self):
        program = Program("p", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=20)
        square = program.make_term(Op.MULTIPLY, [x, x])
        fourth = program.make_term(Op.MULTIPLY, [square, square])
        program.set_output("out", fourth, scale=20)
        with pytest.raises(ValidationError, match="Constraint 3"):
            validate(program)

    def test_constraint4_rescale_too_large(self):
        program = make_program_with_rescale(70.0)
        with pytest.raises(ValidationError, match="Constraint 4"):
            validate(program, max_rescale_bits=60)

    def test_constraint1_level_mismatch(self):
        program = Program("p", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=30)
        y = program.input("y", ValueType.CIPHER, scale=30)
        switched = program.make_term(Op.MOD_SWITCH, [x])
        program.set_output("out", program.make_term(Op.ADD, [switched, y]), scale=30)
        with pytest.raises(ValidationError):
            validate(program)

    def test_negative_scale_rejected(self):
        make_program_with_rescale(55.0)  # 60 - 55 = 5 > 0: still fine
        # ... so force a destructive rescale instead.
        program2 = Program("p", vec_size=8)
        x = program2.input("x", ValueType.CIPHER, scale=20)
        square = program2.make_term(Op.MULTIPLY, [x, x])
        rescaled = program2.make_term(Op.RESCALE, [square], rescale_value=50.0)
        program2.set_output("out", rescaled, scale=20)
        with pytest.raises(ValidationError):
            validate(program2)

    def test_polynomial_counts(self):
        program = Program("p", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=20)
        square = program.make_term(Op.MULTIPLY, [x, x])
        relin = program.make_term(Op.RELINEARIZE, [square])
        program.set_output("out", relin, scale=20)
        counts = compute_polynomial_counts(program)
        assert counts[x.id] == 2
        assert counts[square.id] == 3
        assert counts[relin.id] == 2


class TestParameterSelection:
    def test_parameters_for_compiled_program(self, x2y3_program):
        result = compile_program(x2y3_program, options=CompilerOptions())
        params = result.parameters
        assert params.coeff_modulus_bits[-1] == 60  # special prime
        assert params.total_coeff_modulus_bits == sum(params.coeff_modulus_bits)
        assert params.modulus_count == len(params.coeff_modulus_bits)
        bound = SECURITY_MAX_COEFF_MODULUS_BITS[128][params.poly_modulus_degree]
        assert params.total_coeff_modulus_bits <= bound

    def test_poly_degree_grows_with_modulus(self):
        # A deep program needs a larger N purely because of the security bound.
        program = Program("deep", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=40)
        node = x
        for _ in range(10):
            node = program.make_term(Op.MULTIPLY, [node, node])
        program.set_output("out", node, scale=40)
        result = compile_program(program, options=CompilerOptions())
        assert result.parameters.poly_modulus_degree >= 16384

    def test_security_error_when_program_too_deep(self):
        program = Program("too_deep", vec_size=8)
        x = program.input("x", ValueType.CIPHER, scale=60)
        node = x
        for _ in range(40):
            node = program.make_term(Op.MULTIPLY, [node, node])
        program.set_output("out", node, scale=60)
        with pytest.raises(SecurityError):
            compile_program(program, options=CompilerOptions())

    def test_max_modulus_bits_table(self):
        assert max_modulus_bits(8192, 128) == 218
        assert max_modulus_bits(32768, 128) == 881
        with pytest.raises(SecurityError):
            max_modulus_bits(123, 128)
        with pytest.raises(SecurityError):
            max_modulus_bits(8192, 96)

    def test_higher_security_needs_larger_degree(self, x2y3_program):
        low = compile_program(x2y3_program, options=CompilerOptions(security_level=128))
        high = compile_program(x2y3_program, options=CompilerOptions(security_level=256))
        assert high.parameters.poly_modulus_degree >= low.parameters.poly_modulus_degree

    def test_summary_keys(self, x2y3_program):
        result = compile_program(x2y3_program)
        summary = result.parameters.summary()
        assert set(summary) == {"log_n", "log_q", "r"}


class TestRotationSelection:
    def test_normalize_step(self):
        assert normalize_step(Op.ROTATE_LEFT, 3, 16) == 3
        assert normalize_step(Op.ROTATE_RIGHT, 3, 16) == 13
        assert normalize_step(Op.ROTATE_LEFT, 16, 16) == 0
        assert normalize_step(Op.ROTATE_LEFT, -1, 16) == 15

    def test_rotation_steps_collected_and_deduplicated(self):
        program = Program("p", vec_size=16)
        x = program.input("x", ValueType.CIPHER, scale=30)
        r1 = program.make_term(Op.ROTATE_LEFT, [x], rotation=2)
        r2 = program.make_term(Op.ROTATE_LEFT, [x], rotation=2)
        r3 = program.make_term(Op.ROTATE_RIGHT, [x], rotation=4)
        total = program.make_term(Op.ADD, [program.make_term(Op.ADD, [r1, r2]), r3])
        program.set_output("out", total, scale=30)
        assert select_rotation_steps(program) == [2, 12]

    def test_zero_rotation_excluded(self):
        program = Program("p", vec_size=16)
        x = program.input("x", ValueType.CIPHER, scale=30)
        r = program.make_term(Op.ROTATE_LEFT, [x], rotation=16)
        program.set_output("out", program.make_term(Op.ADD, [r, x]), scale=30)
        assert select_rotation_steps(program) == []
