"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import MockBackend
from repro.core import CompilerOptions, Program
from repro.core.types import Op, ValueType
from repro.frontend import EvaProgram, input_encrypted, output


@pytest.fixture
def mock_backend() -> MockBackend:
    """Deterministic mock backend."""
    return MockBackend(seed=1234)


@pytest.fixture
def noiseless_backend() -> MockBackend:
    """Mock backend with the error model disabled (bit-exact values)."""
    return MockBackend(error_model="none")


@pytest.fixture
def eva_options() -> CompilerOptions:
    return CompilerOptions(policy="eva")


@pytest.fixture
def chet_options() -> CompilerOptions:
    return CompilerOptions(policy="chet")


@pytest.fixture
def x2y3_program() -> Program:
    """The paper's x^2 * y^3 example (Figure 2) as a core IR program."""
    program = Program("x2y3", vec_size=8)
    x = program.input("x", ValueType.CIPHER, scale=60)
    y = program.input("y", ValueType.CIPHER, scale=30)
    x2 = program.make_term(Op.MULTIPLY, [x, x])
    y2 = program.make_term(Op.MULTIPLY, [y, y])
    y3 = program.make_term(Op.MULTIPLY, [y2, y])
    result = program.make_term(Op.MULTIPLY, [x2, y3])
    program.set_output("out", result, scale=30)
    return program


@pytest.fixture
def x2_plus_x_program() -> Program:
    """The paper's x^2 + x example (Figure 3)."""
    program = Program("x2_plus_x", vec_size=8)
    x = program.input("x", ValueType.CIPHER, scale=30)
    x2 = program.make_term(Op.MULTIPLY, [x, x])
    result = program.make_term(Op.ADD, [x2, x])
    program.set_output("out", result, scale=30)
    return program


@pytest.fixture
def simple_pyeva_program() -> EvaProgram:
    """A small mixed program exercised by many executor tests."""
    program = EvaProgram("simple", vec_size=16, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        y = input_encrypted("y", 25)
        z = (x * y) + (x << 2) - 0.5
        w = z * z + x
        output("w", w, 25)
    return program


@pytest.fixture
def simple_inputs() -> dict:
    rng = np.random.default_rng(7)
    return {
        "x": rng.uniform(-1, 1, 16),
        "y": rng.uniform(-1, 1, 16),
    }
