"""Tests for the serving subsystem: registry, sessions, batching, engine, wire."""

import threading
import time

import numpy as np
import pytest

from repro.backend import MockBackend
from repro.core import CompilerOptions, Executor, compile_program, execute_reference, program_signature
from repro.core.serialization import messages
from repro.errors import (
    QueueFullError,
    SerializationError,
    ServingError,
    UnknownProgramError,
)
from repro.frontend import EvaProgram, input_encrypted, output
from repro.serving import (
    EvaServer,
    EvaTcpServer,
    JobEngine,
    ProgramRegistry,
    ServingClient,
    SessionManager,
    SlotBatcher,
    is_slotwise,
)


def make_poly_program(name="poly", vec_size=64, coeff=1.0):
    program = EvaProgram(name, vec_size=vec_size, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("y", x * x + x * coeff + 1.0, 25)
    return program


def make_rotation_program(vec_size=16):
    program = EvaProgram("rot", vec_size=vec_size, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("y", (x << 1) * x, 25)
    return program


class TestProgramSignature:
    def test_stable_across_clones(self):
        program = make_poly_program().graph
        assert program_signature(program) == program_signature(program.clone())

    def test_name_does_not_matter(self):
        a = make_poly_program(name="a").graph
        b = make_poly_program(name="b").graph
        assert program_signature(a) == program_signature(b)

    def test_graph_changes_matter(self):
        a = make_poly_program(coeff=1.0).graph
        b = make_poly_program(coeff=2.0).graph
        assert program_signature(a) != program_signature(b)

    def test_options_matter(self):
        program = make_poly_program().graph
        assert program_signature(program, CompilerOptions(policy="eva")) != program_signature(
            program, CompilerOptions(policy="chet")
        )


class TestProgramRegistry:
    def test_hit_miss_accounting(self):
        registry = ProgramRegistry(capacity=4)
        program = make_poly_program().graph
        first = registry.get_or_compile(program)
        second = registry.get_or_compile(program)
        assert first is second
        assert registry.stats.misses == 1
        assert registry.stats.hits == 1
        assert registry.stats.hit_rate == 0.5

    def test_clone_hits_same_entry(self):
        registry = ProgramRegistry(capacity=4)
        program = make_poly_program().graph
        first = registry.get_or_compile(program)
        second = registry.get_or_compile(program.clone())
        assert first is second

    def test_lru_eviction(self):
        registry = ProgramRegistry(capacity=2)
        programs = [make_poly_program(coeff=float(i)).graph for i in range(3)]
        compiled = [registry.get_or_compile(p) for p in programs]
        assert len(registry) == 2
        assert registry.stats.evictions == 1
        # The oldest entry (coeff=0) was evicted: recompiling misses...
        assert registry.get_or_compile(programs[0]) is not compiled[0]
        # ...while the most recent entry is still cached.
        assert registry.get_or_compile(programs[2]) is compiled[2]

    def test_lru_order_refreshed_by_hits(self):
        registry = ProgramRegistry(capacity=2)
        a, b, c = [make_poly_program(coeff=float(i)).graph for i in range(3)]
        ca = registry.get_or_compile(a)
        registry.get_or_compile(b)
        registry.get_or_compile(a)  # refresh a; b is now least recent
        registry.get_or_compile(c)  # evicts b
        assert registry.get_or_compile(a) is ca
        assert registry.stats.evictions == 1


class TestSessionManager:
    def test_context_reused_per_client(self):
        compilation = compile_program(make_poly_program().graph)
        sessions = SessionManager(MockBackend(seed=0), capacity=4)
        first = sessions.get(compilation, client_id="alice")
        second = sessions.get(compilation, client_id="alice")
        assert first is second
        assert sessions.stats.hits == 1
        assert sessions.stats.misses == 1

    def test_clients_never_share_contexts(self):
        compilation = compile_program(make_poly_program().graph)
        sessions = SessionManager(MockBackend(seed=0), capacity=4)
        assert sessions.get(compilation, "alice") is not sessions.get(compilation, "bob")

    def test_lru_eviction_and_keys_generated(self):
        compilation = compile_program(make_poly_program().graph)
        sessions = SessionManager(MockBackend(seed=0), capacity=2)
        contexts = [sessions.get(compilation, f"client{i}") for i in range(3)]
        assert all(ctx.keys_generated for ctx in contexts)
        assert len(sessions) == 2
        assert sessions.stats.evictions == 1
        # client0 was evicted; a repeat request rebuilds its session.
        assert sessions.get(compilation, "client0") is not contexts[0]

    def test_invalidate_client(self):
        compilation = compile_program(make_poly_program().graph)
        sessions = SessionManager(MockBackend(seed=0), capacity=8)
        sessions.get(compilation, "alice")
        sessions.get(compilation, "bob")
        assert sessions.invalidate("alice") == 1
        assert len(sessions) == 1


class TestExecutorContextReuse:
    def test_context_param_skips_keygen(self, noiseless_backend):
        program = make_poly_program(vec_size=16)
        compilation = compile_program(program.graph)
        executor = Executor(compilation, noiseless_backend)
        context = executor.create_context()
        xv = np.linspace(-1, 1, 16)
        warm = executor.execute({"x": xv}, context=context)
        cold = executor.execute({"x": xv})
        assert warm.stats.context_seconds == 0.0
        assert cold.stats.context_seconds > 0.0
        np.testing.assert_allclose(warm["y"], cold["y"], rtol=1e-9)

    def test_repeated_reuse_matches_reference(self, noiseless_backend):
        program = make_poly_program(vec_size=16)
        compilation = compile_program(program.graph)
        executor = Executor(compilation, noiseless_backend)
        context = executor.create_context()
        for seed in range(3):
            xv = np.random.default_rng(seed).uniform(-1, 1, 16)
            result = executor.execute({"x": xv}, context=context)
            reference = execute_reference(program.graph, {"x": xv})
            np.testing.assert_allclose(result["y"], reference["y"], rtol=1e-9)


class TestSlotBatcher:
    def test_slotwise_detection(self):
        assert is_slotwise(make_poly_program().graph)
        assert not is_slotwise(make_rotation_program().graph)

    def test_rotation_program_not_batchable(self):
        compilation = compile_program(make_rotation_program().graph)
        assert not SlotBatcher().batchable(compilation)

    def test_pack_execute_unpack_matches_reference(self, noiseless_backend):
        program = make_poly_program(vec_size=64)
        compilation = compile_program(program.graph)
        batcher = SlotBatcher()
        rng = np.random.default_rng(3)
        requests = [{"x": rng.uniform(-1, 1, 8)} for _ in range(5)]
        plan = batcher.plan(compilation, requests)
        assert plan is not None
        assert plan.lane_width == 8
        assert plan.capacity == 8
        packed = batcher.pack(plan, requests)
        result = Executor(compilation, noiseless_backend).execute(packed)
        per_request = batcher.unpack(plan, result.outputs)
        for request, outputs in zip(requests, per_request):
            reference = execute_reference(program.graph, request)
            np.testing.assert_allclose(outputs["y"], reference["y"][:8], rtol=1e-9)

    def test_single_request_not_planned(self):
        compilation = compile_program(make_poly_program().graph)
        assert SlotBatcher().plan(compilation, [{"x": np.ones(4)}]) is None

    def test_overflowing_batch_not_planned(self):
        compilation = compile_program(make_poly_program(vec_size=8).graph)
        requests = [{"x": np.ones(4)} for _ in range(3)]  # capacity is 2
        assert SlotBatcher().plan(compilation, requests) is None

    def test_mixed_widths_use_widest_lane(self):
        compilation = compile_program(make_poly_program(vec_size=64).graph)
        requests = [{"x": np.ones(4)}, {"x": np.ones(16)}]
        plan = SlotBatcher().plan(compilation, requests)
        assert plan is not None
        assert plan.lane_width == 16

    def test_non_dividing_request_not_planned(self):
        # A size-3 vector cannot tile a power-of-two lane; planning must bail
        # out so the bad request fails alone on the solo path instead of
        # blowing up pack() for the whole batch.
        compilation = compile_program(make_poly_program(vec_size=64).graph)
        requests = [{"x": np.ones(16)}, {"x": np.ones(3)}]
        assert SlotBatcher().plan(compilation, requests) is None

    def test_invalid_output_width_not_planned(self):
        compilation = compile_program(make_poly_program(vec_size=64).graph)
        requests = [{"x": np.ones(8)}, {"x": np.ones(8)}]
        assert SlotBatcher().plan(compilation, requests, ["oops", None]) is None
        assert SlotBatcher().plan(compilation, requests, [-4, None]) is None

    def test_cached_info_matches_fresh_scan(self):
        batcher = SlotBatcher()
        slotwise = compile_program(make_poly_program(vec_size=64).graph)
        crossing = compile_program(make_rotation_program().graph)
        assert batcher.inspect(slotwise).batchable
        assert not batcher.inspect(crossing).batchable
        requests = [{"x": np.ones(8)}, {"x": np.ones(8)}]
        with_info = batcher.plan(slotwise, requests, info=batcher.inspect(slotwise))
        without = batcher.plan(slotwise, requests)
        assert with_info == without


class TestJobEngine:
    def test_futures_resolve(self):
        with JobEngine(lambda jobs: [job.payload * 2 for job in jobs], workers=2) as engine:
            futures = [engine.submit("g", i) for i in range(10)]
            assert [f.result(10) for f in futures] == [i * 2 for i in range(10)]
        assert engine.metrics.completed == 10

    def test_handler_exception_fails_batch(self):
        def boom(jobs):
            raise RuntimeError("kaput")

        with JobEngine(boom, workers=1) as engine:
            future = engine.submit("g", None)
            with pytest.raises(RuntimeError, match="kaput"):
                future.result(10)
        assert engine.metrics.failed == 1

    def test_bounded_queue_rejects_on_timeout(self):
        release = threading.Event()

        def slow(jobs):
            release.wait(10)
            return [None] * len(jobs)

        engine = JobEngine(slow, workers=1, queue_size=1, max_batch=1)
        try:
            engine.submit("g", 0)  # picked up by the worker, then blocks
            time.sleep(0.05)
            engine.submit("g", 1)  # fills the queue
            with pytest.raises(QueueFullError):
                engine.submit("g", 2, timeout=0.01)
            assert engine.metrics.rejected == 1
        finally:
            release.set()
            engine.close()

    def test_groups_are_batched_together(self):
        release = threading.Event()
        batches = []

        def handler(jobs):
            if jobs[0].payload == "block":
                release.wait(10)
            else:
                batches.append([job.payload for job in jobs])
            return [None] * len(jobs)

        engine = JobEngine(handler, workers=1, queue_size=32, max_batch=8)
        try:
            blocker = engine.submit("warmup", "block")
            time.sleep(0.05)  # worker is now busy; the queue accumulates
            futures = [engine.submit("a", f"a{i}") for i in range(3)]
            futures += [engine.submit("b", "b0")]
            futures += [engine.submit("a", "a3")]
            release.set()
            for future in futures + [blocker]:
                future.result(10)
        finally:
            engine.close()
        assert ["a0", "a1", "a2", "a3"] in batches
        assert ["b0"] in batches
        assert engine.metrics.largest_batch == 4

    def test_submit_after_close_raises(self):
        engine = JobEngine(lambda jobs: [None] * len(jobs), workers=1)
        engine.close()
        with pytest.raises(ServingError):
            engine.submit("g", 0)

    def test_shutdown_drains_queued_jobs_by_default(self):
        """close()/shutdown() without cancel runs every queued job to a result."""
        entered = threading.Event()
        release = threading.Event()

        def gated(jobs):
            entered.set()
            release.wait(10)
            return [job.payload for job in jobs]

        engine = JobEngine(gated, workers=1, max_batch=1)
        first = engine.submit("g", "first")
        assert entered.wait(10)
        queued = [engine.submit("g", f"q{i}") for i in range(3)]
        release.set()
        engine.shutdown(wait=True)
        assert first.result(0) == "first"
        assert [future.result(0) for future in queued] == ["q0", "q1", "q2"]

    def test_shutdown_cancel_pending_resolves_every_future(self):
        """A stop during a busy batch must never leave a future unresolved.

        Regression test: in-flight work completes, queued-but-unstarted jobs
        are cancelled — nothing stays pending forever.
        """
        import concurrent.futures

        entered = threading.Event()
        release = threading.Event()

        def gated(jobs):
            entered.set()
            release.wait(10)
            return [job.payload for job in jobs]

        engine = JobEngine(gated, workers=1, max_batch=1)
        in_flight = engine.submit("g", "busy")
        assert entered.wait(10)
        pending = [engine.submit("g", i) for i in range(4)]

        stopper = threading.Thread(
            target=lambda: engine.shutdown(wait=True, cancel_pending=True)
        )
        stopper.start()
        release.set()
        stopper.join(10)
        assert not stopper.is_alive()

        assert in_flight.result(0) == "busy"
        for future in pending:
            assert future.done()
            assert future.cancelled()
            with pytest.raises(concurrent.futures.CancelledError):
                future.result(0)
        assert engine.metrics.cancelled == 4
        assert engine.metrics.completed == 1

    def test_caller_cancelled_future_does_not_kill_worker(self):
        """A future cancelled while queued must not crash the worker thread.

        Regression test: the worker used to call ``set_result`` on whatever it
        processed; a caller-side ``cancel()`` made that raise
        ``InvalidStateError``, killing the worker and stranding every job
        behind it.
        """
        entered = threading.Event()
        release = threading.Event()

        def gated(jobs):
            if jobs[0].payload == "block":
                entered.set()
                release.wait(10)
            return [job.payload for job in jobs]

        engine = JobEngine(gated, workers=1, max_batch=1)
        try:
            blocker = engine.submit("warmup", "block")
            assert entered.wait(10)
            doomed = engine.submit("g", "doomed")
            assert doomed.cancel()
            release.set()
            assert blocker.result(10) == "block"
            # The worker survived the cancelled job and still serves:
            assert engine.submit("g", "after").result(10) == "after"
            assert engine.metrics.cancelled == 1
        finally:
            engine.close()


class TestEvaServer:
    def test_unknown_program_rejected_at_submit(self):
        with EvaServer(backend=MockBackend(seed=0), workers=1) as server:
            with pytest.raises(UnknownProgramError):
                server.submit("nope", {"x": [1.0]})

    def test_bad_output_size_rejected_at_submit(self):
        with EvaServer(backend=MockBackend(seed=0), workers=1) as server:
            server.register("poly", make_poly_program())
            with pytest.raises(ServingError):
                server.submit("poly", {"x": [1.0]}, output_size="oops")
            with pytest.raises(ServingError):
                server.submit("poly", {"x": [1.0]}, output_size=-4)

    def test_malformed_request_fails_alone_in_batch(self):
        # One non-dividing request forces the batch onto the solo path; the
        # good requests still succeed and only the bad one errors.
        program = make_poly_program(vec_size=64)
        with EvaServer(
            backend=MockBackend(error_model="none"),
            workers=1,
            max_batch=8,
            batch_window=0.05,
        ) as server:
            server.register("poly", program)
            good = [server.submit("poly", {"x": [0.5] * 8}) for _ in range(2)]
            bad = server.submit("poly", {"x": [1.0, 2.0, 3.0]})
            for future in good:
                response = future.result(30)
                reference = execute_reference(program.graph, {"x": [0.5] * 8})
                np.testing.assert_allclose(response["y"], reference["y"][:8], rtol=1e-9)
            with pytest.raises(Exception):
                bad.result(30)

    def test_batched_outputs_match_reference_per_request(self):
        program = make_poly_program(vec_size=64)
        with EvaServer(
            backend=MockBackend(seed=0), workers=1, max_batch=8, batch_window=0.05
        ) as server:
            server.register("poly", program)
            rng = np.random.default_rng(11)
            request_inputs = [rng.uniform(-1, 1, 8) for _ in range(6)]
            futures = [server.submit("poly", {"x": xv}) for xv in request_inputs]
            responses = [future.result(30) for future in futures]
        assert any(response.batch_size > 1 for response in responses)
        for xv, response in zip(request_inputs, responses):
            reference = execute_reference(program.graph, {"x": xv})
            np.testing.assert_allclose(response["y"], reference["y"][:8], atol=1e-3)

    def test_concurrent_clients_against_one_server(self):
        program = make_poly_program(vec_size=64)
        server = EvaServer(
            backend=MockBackend(error_model="none"),
            workers=4,
            max_batch=4,
            batch_window=0.01,
        )
        server.register("poly", program)
        errors = []

        def client(client_id: str, seed: int) -> None:
            try:
                rng = np.random.default_rng(seed)
                for _ in range(5):
                    xv = rng.uniform(-1, 1, 8)
                    response = server.request("poly", {"x": xv}, client_id=client_id)
                    reference = execute_reference(program.graph, {"x": xv})
                    np.testing.assert_allclose(response["y"], reference["y"][:8], atol=1e-3)
                    assert response.client_id == client_id
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append((client_id, exc))

        threads = [
            threading.Thread(target=client, args=(f"client{i}", i)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        server.close()
        assert not errors, errors
        stats = server.stats()
        assert stats["engine"]["completed"] == 30
        # One compilation for 30 requests; every request after the first hit.
        assert stats["registry"]["misses"] == 1
        assert stats["registry"]["hits"] == stats["engine"]["batches"] - 1
        # One session per client, reused across each client's requests.
        assert stats["sessions"]["sessions"] == 6
        assert stats["sessions"]["misses"] == 6

    def test_warm_requests_hit_all_caches(self):
        program = make_poly_program(vec_size=32)
        with EvaServer(backend=MockBackend(seed=0), workers=1) as server:
            server.register("poly", program)
            cold = server.request("poly", {"x": [0.5] * 8})
            warm = server.request("poly", {"x": [0.25] * 8})
        assert not cold.cached_program and not cold.cached_session
        assert warm.cached_program and warm.cached_session

    def test_rotation_program_served_unbatched(self):
        program = make_rotation_program(vec_size=16)
        with EvaServer(
            backend=MockBackend(error_model="none"), workers=1, batch_window=0.05
        ) as server:
            server.register("rot", program)
            xv = np.arange(16, dtype=float) / 16.0
            futures = [server.submit("rot", {"x": xv}) for _ in range(3)]
            responses = [future.result(30) for future in futures]
        reference = execute_reference(program.graph, {"x": xv})
        for response in responses:
            assert response.batch_size == 1
            np.testing.assert_allclose(response["y"], reference["y"], rtol=1e-9)

    def test_rotation_program_lane_batched_when_requests_are_narrow(self):
        """Narrow concurrent requests to a rotation-bearing program batch via
        an on-demand lane-lowered variant, and match the solo answers."""
        program = make_rotation_program(vec_size=64)
        with EvaServer(
            backend=MockBackend(error_model="none"),
            workers=1,
            max_batch=8,
            batch_window=0.05,
        ) as server:
            server.register("rot", program)
            rng = np.random.default_rng(23)
            request_inputs = [rng.uniform(-1, 1, 8) for _ in range(4)]
            futures = [server.submit("rot", {"x": xv}) for xv in request_inputs]
            responses = [future.result(60) for future in futures]
            solo = server.request("rot", {"x": request_inputs[0]})
        assert any(response.batch_size > 1 for response in responses)
        assert any(response.lane_width == 8 for response in responses)
        for xv, response in zip(request_inputs, responses):
            reference = execute_reference(program.graph, {"x": xv})
            np.testing.assert_allclose(response["y"], reference["y"][:8], rtol=1e-9)
        # A later solo request answers identically (width included).
        np.testing.assert_allclose(solo["y"], responses[0]["y"], rtol=1e-9)

    def test_registered_lane_width_serves_all_requests_lowered(self):
        program = make_rotation_program(vec_size=64)
        with EvaServer(
            backend=MockBackend(error_model="none"), workers=1, batch_window=0.0
        ) as server:
            server.register("rot", program, lane_width=8)
            xv = np.arange(8, dtype=float) / 8.0
            response = server.request("rot", {"x": xv})
        assert response.lane_width == 8
        reference = execute_reference(program.graph, {"x": xv})
        np.testing.assert_allclose(response["y"], reference["y"][:8], rtol=1e-9)

    def test_same_signature_different_names_share_batches(self):
        """Grouping is by compilation signature: identical programs registered
        under two names land in one packed execution (same client)."""
        with EvaServer(
            backend=MockBackend(error_model="none"),
            workers=1,
            max_batch=8,
            batch_window=0.05,
        ) as server:
            server.register("a", make_poly_program(name="a", vec_size=64))
            server.register("b", make_poly_program(name="b", vec_size=64))
            rng = np.random.default_rng(3)
            request_inputs = [rng.uniform(-1, 1, 8) for _ in range(4)]
            futures = [
                server.submit("a" if i % 2 == 0 else "b", {"x": xv})
                for i, xv in enumerate(request_inputs)
            ]
            responses = [future.result(30) for future in futures]
        assert max(response.batch_size for response in responses) == 4
        # Each response still reports the name it was submitted under.
        assert [response.program for response in responses] == ["a", "b", "a", "b"]
        for xv, response in zip(request_inputs, responses):
            reference = execute_reference(make_poly_program(vec_size=64).graph, {"x": xv})
            np.testing.assert_allclose(response["y"], reference["y"][:8], rtol=1e-9)

    def test_registry_lane_variant_cached(self):
        registry = ProgramRegistry(capacity=8)
        program = make_rotation_program(vec_size=64).graph
        base = registry.get_or_compile(program)
        first = registry.get_or_compile_variant(
            program, lane_width=8, base_signature=base.signature
        )
        second = registry.get_or_compile_variant(
            program, lane_width=8, base_signature=base.signature
        )
        assert first is second
        assert first.signature != base.signature
        assert first.lane_width == 8 and base.lane_width is None

    def test_per_client_batches_are_isolated(self):
        program = make_poly_program(vec_size=64)
        with EvaServer(
            backend=MockBackend(error_model="none"),
            workers=1,
            max_batch=8,
            batch_window=0.05,
        ) as server:
            server.register("poly", program)
            futures = [
                server.submit("poly", {"x": [float(i)] * 4}, client_id=f"c{i % 2}")
                for i in range(4)
            ]
            responses = [future.result(30) for future in futures]
        for i, response in enumerate(responses):
            reference = execute_reference(program.graph, {"x": [float(i)] * 4})
            np.testing.assert_allclose(response["y"], reference["y"][:4], rtol=1e-9)
            # Groups are (program, client): batches never span clients.
            assert response.batch_size <= 2


class TestWireMessages:
    def test_request_roundtrip(self):
        line = messages.encode_request(
            "submit", program="poly", inputs={"x": [1.0, 2.0]}, client_id="alice"
        )
        decoded = messages.decode_request(line)
        assert decoded["op"] == "submit"
        assert decoded["program"] == "poly"
        assert decoded["client_id"] == "alice"
        np.testing.assert_allclose(decoded["inputs"]["x"], [1.0, 2.0])

    def test_response_roundtrip(self):
        line = messages.encode_response(outputs={"y": np.array([1.5, 2.5])})
        decoded = messages.decode_response(line)
        assert decoded["ok"]
        np.testing.assert_allclose(decoded["outputs"]["y"], [1.5, 2.5])

    def test_error_roundtrip(self):
        line = messages.encode_error(ServingError("nope"))
        decoded = messages.decode_response(line)
        assert not decoded["ok"]
        assert decoded["kind"] == "ServingError"

    def test_malformed_request_rejected(self):
        with pytest.raises(SerializationError):
            messages.decode_request("not json")
        with pytest.raises(SerializationError):
            messages.decode_request('{"op": "explode"}')
        with pytest.raises(SerializationError):
            messages.decode_request('{"op": "submit"}')

    def test_bad_output_size_rejected_at_decode(self):
        for bad in ('"oops"', "-4", "0", "true", "1.5"):
            line = (
                '{"op": "submit", "program": "p", "inputs": {"x": [1.0]}, '
                f'"output_size": {bad}}}'
            )
            with pytest.raises(SerializationError):
                messages.decode_request(line)


class TestTcpServing:
    @pytest.fixture()
    def tcp_server(self):
        program = make_poly_program(vec_size=32)
        eva = EvaServer(backend=MockBackend(seed=5), workers=2, batch_window=0.0)
        eva.register("poly", program)
        tcp = EvaTcpServer(eva, port=0)
        tcp.start_background()
        yield tcp, program
        tcp.shutdown()
        tcp.server_close()
        eva.close()

    def test_submit_over_tcp(self, tcp_server):
        tcp, program = tcp_server
        host, port = tcp.address
        xv = np.linspace(-1, 1, 8)
        with ServingClient(host, port) as client:
            assert client.ping()
            assert client.programs() == ["poly"]
            outputs = client.submit("poly", {"x": xv})
            stats = client.stats()
        reference = execute_reference(program.graph, {"x": xv})
        np.testing.assert_allclose(outputs["y"], reference["y"][:8], atol=1e-3)
        assert stats["engine"]["completed"] == 1

    def test_error_reported_not_fatal(self, tcp_server):
        tcp, _ = tcp_server
        host, port = tcp.address
        with ServingClient(host, port) as client:
            with pytest.raises(ServingError, match="UnknownProgramError"):
                client.submit("missing", {"x": [1.0]})
            # The connection survives a failed request.
            assert client.ping()

    def test_cli_serve_rejects_duplicate_stems(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.serialization import save

        program = make_poly_program()
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        save(program.graph, tmp_path / "a" / "prog.evaproto")
        save(program.graph, tmp_path / "b" / "prog.evaproto")
        code = main(
            [
                "serve",
                str(tmp_path / "a" / "prog.evaproto"),
                str(tmp_path / "b" / "prog.evaproto"),
                "--port",
                "0",
            ]
        )
        assert code == 1
        assert "duplicate program name" in capsys.readouterr().err

    def test_cli_serve_rejects_compiled_programs(self, tmp_path, capsys):
        """An already-compiled file fails at startup, not per-request."""
        from repro.cli import main
        from repro.core import compile_program
        from repro.core.serialization import save

        program = make_poly_program()
        compiled = compile_program(program.graph)
        path = tmp_path / "compiled.evaproto"
        save(compiled.program, path)
        code = main(["serve", str(path), "--port", "0"])
        assert code == 1
        assert "already-compiled" in capsys.readouterr().err

    def test_cli_serve_end_to_end(self, tmp_path):
        """`repro.cli serve` in a subprocess answers a ServingClient request."""
        import json
        import os
        import subprocess
        import sys
        from pathlib import Path

        import repro
        from repro.core.serialization import save

        program = make_poly_program(vec_size=32)
        path = tmp_path / "poly.evaproto"
        save(program.graph, path)
        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                str(path),
                "--port",
                "0",
                "--backend",
                "mock-exact",
                "--batch-window",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = json.loads(process.stdout.readline())
            assert banner["programs"] == ["poly"]
            host, port = banner["serving"].rsplit(":", 1)
            xv = np.linspace(-1, 1, 8)
            with ServingClient(host, int(port)) as client:
                outputs = client.submit("poly", {"x": xv})
            reference = execute_reference(program.graph, {"x": xv})
            np.testing.assert_allclose(outputs["y"], reference["y"][:8], rtol=1e-9)
        finally:
            process.terminate()
            process.wait(10)

    def test_cli_submit_against_server(self, tcp_server, tmp_path, capsys):
        import json

        from repro.cli import main

        tcp, program = tcp_server
        host, port = tcp.address
        inputs_path = tmp_path / "inputs.json"
        inputs_path.write_text(json.dumps({"x": [0.5] * 8}))
        code = main(
            [
                "submit",
                "poly",
                "--inputs",
                str(inputs_path),
                "--host",
                host,
                "--port",
                str(port),
                "--head",
                "8",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        reference = execute_reference(program.graph, {"x": [0.5] * 8})
        np.testing.assert_allclose(payload["outputs"]["y"], reference["y"][:8], atol=1e-3)
        assert payload["stats"]["program"] == "poly"


class TestLaneReviewRegressions:
    """Regressions from review: pinned-lane width contract, output periods,
    and re-registration races in signature-grouped batches."""

    def test_pinned_lane_rejects_wider_requests(self):
        """A request wider than a registered lane width must error, not be
        computed wrongly by the lane-local rotations."""
        program = make_rotation_program(vec_size=64)
        with EvaServer(
            backend=MockBackend(error_model="none"), workers=1, batch_window=0.0
        ) as server:
            server.register("rot", program, lane_width=8)
            with pytest.raises(ServingError, match="lane width"):
                server.request("rot", {"x": np.arange(64, dtype=float)})
            with pytest.raises(ServingError, match="lane width"):
                server.request("rot", {"x": np.ones(4)}, output_size=16)
            # Requests at or below the lane width still work.
            xv = np.arange(8, dtype=float) / 8.0
            response = server.request("rot", {"x": xv})
            reference = execute_reference(program.graph, {"x": xv})
            np.testing.assert_allclose(response["y"], reference["y"][:8], rtol=1e-9)

    def test_solo_width_covers_constant_period(self):
        """A constant wider than the request widens the reply to the output's
        true period instead of silently truncating it."""
        program = EvaProgram("wide", vec_size=16, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("y", (x << 1) * list(np.arange(1.0, 9.0)), 25)
        with EvaServer(
            backend=MockBackend(error_model="none"), workers=1, batch_window=0.0
        ) as server:
            server.register("wide", program)
            response = server.request("wide", {"x": [1.0, 2.0, 3.0, 4.0]})
        reference = execute_reference(program.graph, {"x": [1.0, 2.0, 3.0, 4.0]})
        assert len(response["y"]) == 8  # lcm(request 4, constant 8)
        np.testing.assert_allclose(response["y"], reference["y"][:8], rtol=1e-9)

    @staticmethod
    def _make_jobs(server, signature, named_inputs):
        """Build a worker batch by hand (deterministic re-registration races)."""
        from concurrent.futures import Future

        from repro.serving import Job, ServeRequest

        return [
            Job(
                id=index,
                group=("plain", signature, "c"),
                payload=ServeRequest(inputs=dict(inputs), name=name),
                future=Future(),
                submitted_at=0.0,
            )
            for index, (name, inputs) in enumerate(named_inputs)
        ]

    def test_reregistered_name_cannot_answer_other_names_batch(self):
        """A name re-registered to a different program mid-flight must not
        execute jobs grouped under the old signature."""
        program = make_poly_program(vec_size=64)
        with EvaServer(
            backend=MockBackend(error_model="none"), workers=1, batch_window=0.0
        ) as server:
            spec = server.register("a", program)
            server.register("b", make_poly_program(name="b", vec_size=64))
            jobs = self._make_jobs(
                server,
                spec.signature,
                [("a", {"x": [0.5] * 8}), ("b", {"x": [0.25] * 8})],
            )
            # Between admission and handling, 'a' changes meaning; 'b' still
            # carries the grouped signature and must answer the whole batch
            # with the *original* compilation.
            server.register("a", make_poly_program(coeff=9.0, vec_size=64))
            responses = server._handle_batch(jobs)
            for xv, response in zip([[0.5] * 8, [0.25] * 8], responses):
                reference = execute_reference(program.graph, {"x": xv})
                np.testing.assert_allclose(response["y"], reference["y"][:8], rtol=1e-9)

    def test_batch_with_no_matching_signature_fails_cleanly(self):
        program = make_poly_program(vec_size=64)
        with EvaServer(
            backend=MockBackend(error_model="none"), workers=1, batch_window=0.0
        ) as server:
            spec = server.register("only", program)
            jobs = self._make_jobs(server, spec.signature, [("only", {"x": [0.5] * 8})])
            server.register("only", make_poly_program(coeff=9.0, vec_size=64))
            with pytest.raises(UnknownProgramError):
                server._handle_batch(jobs)

    def test_lane_masks_do_not_inflate_min_lane(self):
        from repro.core import CompilerOptions as _Options
        from repro.serving.batching import min_lane_width

        program = make_rotation_program(vec_size=64)
        lowered = compile_program(program.graph, options=_Options(lane_width=16))
        # The 16-wide masks are marked compiler plumbing; only the program's
        # real constants (scalars here) count toward the output period.
        assert min_lane_width(lowered.program) == 1
        # ... and the marker survives the JSON artifact round trip...
        from repro.core.serialization.json_format import dict_to_program, program_to_dict

        restored = dict_to_program(program_to_dict(lowered.program))
        assert min_lane_width(restored) == 1
        # ... and the binary proto round trip (the default save()/load()).
        from repro.core.serialization import deserialize, serialize

        reloaded = deserialize(serialize(lowered.program))
        assert min_lane_width(reloaded) == 1


class TestSloScheduling:
    """Deadline admission and per-request batch-vs-solo (SLO classes)."""

    def test_linger_budget_per_class(self):
        from repro.serving import linger_budget

        # tight never lingers; relaxed always takes the full window.
        assert linger_budget("tight", 0.5, 0.001, 1.0) == 0.0
        assert linger_budget("relaxed", 0.5, 0.001, 1.0) == 0.5
        # standard is capped by its deadline slack after execution...
        assert linger_budget("standard", 0.5, 0.3, 0.1) == pytest.approx(0.2)
        # ... stays solo (not negative) when slack just covers execution...
        assert linger_budget("standard", 0.5, 0.1, 0.1) == 0.0
        assert linger_budget("standard", 0.5, 0.05, 0.1) == 0.0
        # ... and takes the full window with no deadline at all.
        assert linger_budget("standard", 0.5, None, 0.0) == 0.5

    def test_infeasible_deadline_rejected_with_retry_after(self):
        from repro.errors import DeadlineInfeasibleError

        with JobEngine(lambda jobs: [None] * len(jobs), workers=1) as engine:
            # Modeled solo execution of 500ms cannot meet a 5ms deadline.
            with pytest.raises(DeadlineInfeasibleError, match="infeasible") as info:
                engine.submit("g", 0, deadline_ms=5.0, execute_estimate=0.5)
            assert info.value.retry_after >= 0.05
            assert engine.metrics.deadline_rejected == 1
            # Without a deadline the same job is admitted normally.
            assert engine.submit("g", 1).result(10) is None
        with pytest.raises(ValueError, match="unknown SLO class"):
            JobEngine(lambda jobs: jobs, workers=1).submit("g", 0, slo_class="bogus")

    def test_deadline_at_batch_horizon_goes_solo_not_rejected(self):
        """Slack that covers execution but not the linger window admits solo.

        The admission model deliberately excludes the batch window: with a
        1s window, an execute estimate of 1ms, and a 300ms deadline, the
        request must neither be rejected nor held for the full window.
        (The margins are wide so a loaded CI box cannot turn the attained
        outcome into a missed one.)
        """
        with JobEngine(
            lambda jobs: [None] * len(jobs), workers=1, batch_window=1.0, max_batch=8
        ) as engine:
            started = time.perf_counter()
            future = engine.submit(
                "g", 0, deadline_ms=300.0, execute_estimate=0.001
            )
            assert future.result(10) is None
            elapsed = time.perf_counter() - started
            assert elapsed < 0.3, "standard job was held past its deadline slack"
            assert engine.metrics.deadline_rejected == 0
            assert engine.metrics.slo_attained == 1

    def test_tight_skips_linger_while_relaxed_amortizes(self):
        """Under the same window, tight goes solo now, relaxed fills lanes."""
        batches = []

        def handler(jobs):
            batches.append([job.payload for job in jobs])
            return [None] * len(jobs)

        with JobEngine(handler, workers=1, batch_window=0.4, max_batch=4) as engine:
            started = time.perf_counter()
            tight = engine.submit("g", "t0", slo_class="tight", client="a")
            assert tight.result(10) is None
            assert time.perf_counter() - started < 0.3, "tight job lingered"

            # A relaxed job holds the window open long enough for a straggler
            # submitted well after it to share its batch.
            first = engine.submit("g", "r0", slo_class="relaxed", client="b")
            time.sleep(0.1)
            second = engine.submit("g", "r1", slo_class="relaxed", client="b")
            assert first.result(10) is None and second.result(10) is None
        assert ["t0"] in batches
        assert ["r0", "r1"] in batches
        assert engine.metrics.largest_batch == 2

    def test_wire_carries_deadline_and_typed_rejection(self):
        """The full loop over TCP: SLO fields on the envelope, typed error back."""
        from repro.errors import DeadlineInfeasibleError

        program = make_poly_program(vec_size=32)
        eva = EvaServer(backend=MockBackend(seed=5), workers=1, batch_window=0.0)
        eva.register("poly", program)
        tcp = EvaTcpServer(eva, port=0)
        tcp.start_background()
        try:
            host, port = tcp.address
            with ServingClient(host, port) as client:
                # A generous deadline is served (and scored as attained);
                # this also seeds the server's cost estimate and the
                # engine's observed wait/execute history.
                outputs = client.submit(
                    "poly", {"x": [1.0, 2.0]}, deadline_ms=10_000.0,
                    slo_class="standard",
                )
                assert "y" in outputs
                assert eva.engine.metrics.slo_attained == 1
                # A 1 microsecond deadline is below any modeled execute time.
                with pytest.raises(DeadlineInfeasibleError) as info:
                    client.submit("poly", {"x": [1.0, 2.0]}, deadline_ms=0.001)
                assert info.value.retry_after > 0
                assert eva.engine.metrics.deadline_rejected == 1
                # The connection survives the rejection.
                assert client.ping()
            snapshot = eva.metrics_snapshot()
            names = {c["name"] for c in snapshot["counters"]}
            assert "serving.slo.attained" in names
            assert "serving.slo.rejected" in names
        finally:
            tcp.shutdown()
            tcp.server_close()
            eva.close()

    def test_fairness_policy_assigns_class_and_deadline_defaults(self):
        from repro.serving import FairnessPolicy

        policy = FairnessPolicy(
            slo_classes={"trader": "tight"},
            class_deadlines_ms={"tight": 50.0},
        )
        assert policy.slo_class_of("trader", None) == "tight"
        assert policy.slo_class_of("other", None) == "standard"
        assert policy.slo_class_of("trader", "relaxed") == "relaxed"
        assert policy.deadline_ms_of("tight") == 50.0
        assert policy.deadline_ms_of("standard") is None
        with pytest.raises(ValueError, match="unknown SLO class"):
            policy.slo_class_of("trader", "bogus")

        def handler(jobs):
            time.sleep(0.05)
            return [None] * len(jobs)

        # The per-client default deadline is enforced without the request
        # carrying one: prime the engine's observed history past 50ms, then
        # the trader's next job is rejected while an unclassified client's
        # identical job is admitted.
        with JobEngine(handler, workers=1, fairness=policy) as engine:
            engine.submit("g", 0, client="trader").result(10)
            from repro.errors import DeadlineInfeasibleError

            with pytest.raises(DeadlineInfeasibleError):
                engine.submit("g", 1, client="trader")
            assert engine.submit("g", 2, client="other").result(10) is None
