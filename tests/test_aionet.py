"""Tests for the asyncio front door (:mod:`repro.serving.aionet`).

The protocol matrix (negotiation, chunked uploads, mixed JSON+binary
clients) already runs against the async listener because it is the default
behind the ``EvaTcpServer`` / ``ClusterTcpServer`` factories — see
``test_wire.py``.  This file covers what is *specific* to the async
transport: front-door selection (flag, env var, validation), the async
frame reader's failure modes, the reply buffer's copy-on-write contract,
connection->worker affinity in the dispatch pool, abrupt disconnects
mid-frame and mid-line, and an idle crowd served alongside live traffic.
"""

import asyncio
import socket
import threading

import numpy as np
import pytest

from repro import wire
from repro.backend import MockBackend
from repro.errors import ServingError, TransportError
from repro.frontend import EvaProgram, input_encrypted, output
from repro.serving import EvaServer, EvaTcpServer, ServingClient
from repro.serving import aionet, netserver
from repro.wire.frames import encode_varint


def make_poly_program(name="poly", vec_size=32):
    program = EvaProgram(name, vec_size=vec_size, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("y", x * x + x + 1.0, 25)
    return program


def make_server():
    server = EvaServer(backend=MockBackend(error_model="none"), workers=2)
    server.register("poly", make_poly_program())
    return server


@pytest.fixture
def async_server():
    server = make_server()
    tcp = EvaTcpServer(server, port=0)
    tcp.start_background()
    try:
        yield tcp
    finally:
        tcp.shutdown()
        server.close()


# -- front-door selection ------------------------------------------------------


class TestFrontdoorSelection:
    def test_async_is_the_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FRONTDOOR", raising=False)
        server = make_server()
        tcp = EvaTcpServer(server, port=0)
        try:
            assert isinstance(tcp, aionet.AsyncEvaTcpServer)
        finally:
            tcp.server_close()
            server.close()

    def test_threaded_fallback_via_flag(self):
        server = make_server()
        tcp = EvaTcpServer(server, port=0, frontdoor="threaded")
        try:
            assert isinstance(tcp, netserver.ThreadedEvaTcpServer)
        finally:
            tcp.server_close()
            server.close()

    def test_env_var_selects_threaded(self, monkeypatch):
        monkeypatch.setenv("REPRO_FRONTDOOR", "threaded")
        server = make_server()
        tcp = EvaTcpServer(server, port=0)
        try:
            assert isinstance(tcp, netserver.ThreadedEvaTcpServer)
        finally:
            tcp.server_close()
            server.close()

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FRONTDOOR", "threaded")
        server = make_server()
        tcp = EvaTcpServer(server, port=0, frontdoor="async")
        try:
            assert isinstance(tcp, aionet.AsyncEvaTcpServer)
        finally:
            tcp.server_close()
            server.close()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ServingError, match="unknown front door"):
            netserver._frontdoor_mode("carrier-pigeon")

    def test_threaded_fallback_serves_traffic(self):
        server = make_server()
        tcp = EvaTcpServer(server, port=0, frontdoor="threaded")
        tcp.start_background()
        try:
            host, port = tcp.address
            with ServingClient(host, port, wire="binary") as client:
                outputs = client.submit("poly", {"x": [1.0, 2.0]})
            np.testing.assert_allclose(outputs["y"][:2], [3.0, 7.0], atol=1e-6)
        finally:
            tcp.shutdown()
            server.close()


# -- async frame reader --------------------------------------------------------


def read_async_frame(data: bytes):
    """Feed one frame, minus the MAGIC byte the connection loop sniffs."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await aionet.read_frame_async(reader)

    return asyncio.run(go())


class TestReadFrameAsync:
    def test_roundtrip(self):
        payload = b"x" * 300
        encoded = wire.encode_frame(wire.FRAME_REQUEST, payload)
        frame_type, got, nbytes = read_async_frame(encoded[1:])
        assert frame_type == wire.FRAME_REQUEST
        assert bytes(got) == payload
        assert nbytes == len(encoded)  # wire size includes the sniffed magic

    def test_unknown_frame_type_rejected(self):
        with pytest.raises(TransportError, match="frame type"):
            read_async_frame(bytes([0x7F]) + encode_varint(0))

    def test_overlong_varint_rejected(self):
        data = bytes([wire.FRAME_REQUEST]) + b"\x80" * 10 + b"\x01"
        with pytest.raises(TransportError, match="varint"):
            read_async_frame(data)

    def test_oversized_length_rejected_before_alloc(self):
        data = bytes([wire.FRAME_REQUEST]) + encode_varint(wire.MAX_FRAME_BYTES + 1)
        with pytest.raises(TransportError, match="limit"):
            read_async_frame(data)

    def test_truncated_frame_raises_incomplete(self):
        encoded = wire.encode_frame(wire.FRAME_REQUEST, b"abcdef")
        with pytest.raises(asyncio.IncompleteReadError):
            read_async_frame(encoded[1:-2])


# -- reply buffer and dispatch pool --------------------------------------------


class TestReplyBuffer:
    def test_memoryviews_are_copied_at_write_time(self):
        # The handler writes zero-copy views whose backing store is released
        # before the event loop flushes — the buffer must copy eagerly.
        buffer = aionet._ReplyBuffer()
        backing = bytearray(b"abcdef")
        buffer.write(memoryview(backing))
        backing[:] = b"XXXXXX"
        buffer.flush()  # no-op, must not raise
        assert buffer.drain() == [b"abcdef"]
        assert buffer.drain() == []


class TestDispatchPoolAffinity:
    def test_same_affinity_runs_on_one_thread_in_order(self):
        pool = aionet._DaemonDispatchPool(4, name="test-pool")
        seen, order = [], []

        def record(value):
            seen.append(threading.get_ident())
            order.append(value)
            return value

        futures = [pool.submit(7, record, i) for i in range(32)]
        assert [f.result(timeout=10) for f in futures] == list(range(32))
        assert len(set(seen)) == 1, "one connection must stay on one thread"
        assert order == list(range(32)), "per-connection order must hold"

    def test_distinct_affinities_spread_over_threads(self):
        pool = aionet._DaemonDispatchPool(4, name="test-pool")
        barrier = threading.Barrier(4, timeout=10)

        def rendezvous():
            barrier.wait()
            return threading.get_ident()

        futures = [pool.submit(a, rendezvous) for a in range(4)]
        idents = {f.result(timeout=10) for f in futures}
        assert len(idents) == 4

    def test_exceptions_propagate_through_futures(self):
        pool = aionet._DaemonDispatchPool(2, name="test-pool")

        def boom():
            raise ValueError("kaput")

        with pytest.raises(ValueError, match="kaput"):
            pool.submit(0, boom).result(timeout=10)
        # The worker survives its task's exception.
        assert pool.submit(0, lambda: 42).result(timeout=10) == 42


# -- abrupt disconnects and idle crowds ----------------------------------------


class TestAsyncServerRobustness:
    def test_disconnect_mid_binary_frame(self, async_server):
        host, port = async_server.address
        sock = socket.create_connection((host, port), timeout=5)
        # Declare a 1000-byte frame, send 10 bytes, vanish.
        sock.sendall(
            bytes([wire.MAGIC, wire.FRAME_REQUEST]) + encode_varint(1000) + b"x" * 10
        )
        sock.close()
        self._assert_still_serving(async_server)

    def test_disconnect_mid_json_line(self, async_server):
        host, port = async_server.address
        sock = socket.create_connection((host, port), timeout=5)
        sock.sendall(b'{"op": "ping"')  # no newline, never will be
        sock.close()
        self._assert_still_serving(async_server)

    def test_garbage_first_byte_drops_the_connection_only(self, async_server):
        host, port = async_server.address
        sock = socket.create_connection((host, port), timeout=5)
        sock.sendall(b"\xff\xfe\xfd not a protocol\n")
        # The server must close this connection rather than hang on it.
        sock.settimeout(5)
        assert sock.recv(1) == b""
        sock.close()
        self._assert_still_serving(async_server)

    def test_idle_crowd_plus_mixed_traffic(self, async_server):
        host, port = async_server.address
        idle = [socket.create_connection((host, port), timeout=5) for _ in range(50)]
        try:
            deadline = 50
            for _ in range(deadline):
                if len(async_server.connection_infos()) >= 50:
                    break
                threading.Event().wait(0.05)
            assert len(async_server.connection_infos()) >= 50
            for mode in ("json", "binary"):
                with ServingClient(host, port, wire=mode) as client:
                    outputs = client.submit("poly", {"x": [2.0]})
                np.testing.assert_allclose(outputs["y"][:1], [7.0], atol=1e-6)
            still_idle = sum(
                1 for info in async_server.connection_infos() if info["requests"] == 0
            )
            assert still_idle >= 50
        finally:
            for sock in idle:
                sock.close()

    def _assert_still_serving(self, tcp):
        host, port = tcp.address
        with ServingClient(host, port, wire="binary") as client:
            outputs = client.submit("poly", {"x": [1.0]})
        np.testing.assert_allclose(outputs["y"][:1], [3.0], atol=1e-6)
