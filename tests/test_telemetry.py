"""Tests for the unified telemetry plane: histograms, registry, tracing, wire."""

import json
import logging
import threading
import time

import numpy as np
import pytest

from repro.backend import MockBackend
from repro.core.serialization import messages
from repro.errors import QuotaExceededError
from repro.frontend import EvaProgram, input_encrypted, output
from repro.serving import (
    EvaServer,
    EvaTcpServer,
    FairnessPolicy,
    Histogram,
    JobEngine,
    MetricsRegistry,
    ServingClient,
    Telemetry,
    aggregate_snapshots,
    merge_traces,
    new_trace_id,
    render_prometheus,
)
from repro.serving.telemetry import (
    DEFAULT_BUCKETS,
    absorb_summary,
    percentile_from_buckets,
)


def make_poly_program(name="poly", vec_size=16):
    program = EvaProgram(name, vec_size=vec_size, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("y", x * x + x + 1.0, 25)
    return program


class TestHistogram:
    def test_count_and_sum_track_observations(self):
        hist = Histogram()
        for value in (0.001, 0.002, 0.04):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(0.043)

    def test_bucket_assignment_uses_le_semantics(self):
        # An observation exactly on a bound lands in that bound's bucket.
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        hist.observe(2.0)
        assert hist.counts == [0, 1, 0, 0]
        hist.observe(100.0)  # beyond the ladder -> +Inf bucket
        assert hist.counts == [0, 1, 0, 1]

    def test_percentile_exact_bucket_math(self):
        # 10 observations in [0,1], 10 in (1,2]: the median sits exactly at
        # the first bucket's upper bound and p75 interpolates halfway into
        # the second bucket.
        bounds = (1.0, 2.0, 4.0)
        counts = [10, 10, 0, 0]
        assert percentile_from_buckets(bounds, counts, 20, 50) == pytest.approx(1.0)
        assert percentile_from_buckets(bounds, counts, 20, 75) == pytest.approx(1.5)
        assert percentile_from_buckets(bounds, counts, 20, 100) == pytest.approx(2.0)

    def test_percentile_tracks_numpy_within_bucket_error(self):
        # Factor-2 buckets bound the relative quantile error; synthetic
        # lognormal latencies must reconstruct p50/p95/p99 within that.
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=-4.0, sigma=1.0, size=5000)
        hist = Histogram()
        for value in samples:
            hist.observe(value)
        for q in (50, 95, 99):
            exact = float(np.percentile(samples, q))
            approx = hist.percentile(q)
            assert abs(approx - exact) / exact < 1.0, (q, exact, approx)

    def test_empty_histogram_percentile_is_zero(self):
        assert Histogram().percentile(95) == 0.0

    def test_merge_counts_equals_union(self):
        rng = np.random.default_rng(3)
        a_samples = rng.uniform(0.0005, 0.05, size=200)
        b_samples = rng.uniform(0.001, 0.4, size=300)
        a, b, union = Histogram(), Histogram(), Histogram()
        for value in a_samples:
            a.observe(value)
            union.observe(value)
        for value in b_samples:
            b.observe(value)
            union.observe(value)
        a.merge_counts(b.counts, b.count, b.sum)
        assert a.counts == union.counts
        assert a.count == union.count
        assert a.sum == pytest.approx(union.sum)
        assert a.percentile(95) == pytest.approx(union.percentile(95))

    def test_snapshot_contains_only_nonempty_buckets(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        hist.observe(1.5)
        hist.observe(9.0)
        snap = hist.snapshot()
        assert snap["count"] == 2
        assert snap["buckets"] == [[2.0, 1], [None, 1]]
        assert snap["p50"] > 0

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))


class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.inc("serving.requests.submitted", client="alice", program="p")
        registry.inc("serving.requests.submitted", client="alice", program="p")
        registry.set_gauge("serving.queue.depth", 3)
        registry.observe("serving.queue.seconds", 0.01, client="alice")
        assert registry.counter_value(
            "serving.requests.submitted", client="alice", program="p"
        ) == 2
        snap = registry.snapshot()
        assert snap["counters"][0]["value"] == 2
        assert snap["gauges"][0]["value"] == 3
        assert snap["histograms"][0]["count"] == 1

    def test_label_order_does_not_split_series(self):
        registry = MetricsRegistry()
        registry.inc("c", client="a", program="p")
        registry.inc("c", program="p", client="a")
        assert registry.counter_value("c", client="a", program="p") == 2

    def test_none_labels_are_dropped(self):
        registry = MetricsRegistry()
        registry.inc("c", client="a", program=None)
        assert registry.counter_value("c", client="a") == 1

    def test_series_cardinality_is_bounded(self):
        registry = MetricsRegistry(max_series=3)
        for i in range(10):
            registry.inc("c", client=f"rotating-{i}")
        snap = registry.snapshot()
        assert len(snap["counters"]) == 3
        assert snap["dropped_series"] == 7
        # Existing series keep counting even at the cap.
        registry.inc("c", client="rotating-0")
        assert registry.counter_value("c", client="rotating-0") == 2

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()

        def spin():
            for _ in range(500):
                registry.inc("c", client="x")

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("c", client="x") == 2000


class TestAbsorbSummary:
    def test_numeric_and_nested_leaves_become_gauges(self):
        snapshot = {"gauges": []}
        absorb_summary(
            snapshot,
            "serving.engine",
            {"submitted": 4, "cache": {"hits": 2, "root": "/tmp"}, "path": "/x"},
        )
        names = {g["name"]: g["value"] for g in snapshot["gauges"]}
        assert names == {
            "serving.engine.submitted": 4,
            "serving.engine.cache.hits": 2,
        }

    def test_none_summary_is_noop(self):
        snapshot = {"gauges": []}
        absorb_summary(snapshot, "x", None)
        assert snapshot["gauges"] == []


class TestAggregateSnapshots:
    def _shard_registry(self, values):
        registry = MetricsRegistry()
        for value in values:
            registry.inc("serving.requests.submitted", client="alice")
            registry.observe("serving.queue.seconds", value, client="alice")
        return registry

    def test_per_shard_series_survive_and_totals_sum(self):
        a_values = [0.001, 0.002, 0.004]
        b_values = [0.008, 0.016]
        snapshots = {
            "0": self._shard_registry(a_values).snapshot(),
            "1": self._shard_registry(b_values).snapshot(),
        }
        merged = aggregate_snapshots(snapshots)
        counters = {
            (c["name"], c["labels"].get("shard")): c["value"]
            for c in merged["counters"]
        }
        assert counters[("serving.requests.submitted", "0")] == 3
        assert counters[("serving.requests.submitted", "1")] == 2
        assert counters[("serving.requests.submitted", None)] == 5

    def test_aggregate_percentiles_match_union_bucket_math(self):
        # The cluster-wide p95 must equal what a single registry would have
        # produced over the union of samples — same buckets, same math.
        rng = np.random.default_rng(11)
        a_values = rng.uniform(0.0005, 0.02, size=40)
        b_values = rng.uniform(0.01, 0.3, size=60)
        union = Histogram()
        for value in list(a_values) + list(b_values):
            union.observe(value)
        merged = aggregate_snapshots(
            {
                "0": self._shard_registry(a_values).snapshot(),
                "1": self._shard_registry(b_values).snapshot(),
            }
        )
        aggregate = [
            h
            for h in merged["histograms"]
            if h["name"] == "serving.queue.seconds" and "shard" not in h["labels"]
        ]
        assert len(aggregate) == 1
        assert aggregate[0]["count"] == 100
        assert aggregate[0]["sum"] == pytest.approx(union.sum, rel=1e-6)
        assert aggregate[0]["p95"] == pytest.approx(union.percentile(95), rel=1e-9)
        assert aggregate[0]["p50"] == pytest.approx(union.percentile(50), rel=1e-9)

    def test_dropped_series_sum(self):
        merged = aggregate_snapshots(
            {
                "0": {"counters": [], "gauges": [], "histograms": [], "dropped_series": 2},
                "1": {"counters": [], "gauges": [], "histograms": [], "dropped_series": 3},
            }
        )
        assert merged["dropped_series"] == 5


class TestPrometheusRender:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.inc("serving.requests.submitted", client="alice", program="p")
        registry.set_gauge("serving.queue.depth", 2)
        registry.observe("serving.queue.seconds", 0.0003)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE serving_requests_submitted_total counter" in text
        assert (
            'serving_requests_submitted_total{client="alice",program="p"} 1' in text
        )
        assert "serving_queue_depth 2" in text
        assert "# TYPE serving_queue_seconds histogram" in text
        assert 'serving_queue_seconds_bucket{le="0.0004"} 1' in text
        assert 'serving_queue_seconds_bucket{le="+Inf"} 1' in text
        assert "serving_queue_seconds_count 1" in text

    def test_bucket_counts_are_cumulative(self):
        registry = MetricsRegistry()
        for value in (0.00005, 0.0003, 0.0005):
            registry.observe("h", value)
        text = render_prometheus(registry.snapshot())
        assert 'h_bucket{le="0.0001"} 1' in text
        assert 'h_bucket{le="0.0004"} 2' in text
        assert 'h_bucket{le="0.0008"} 3' in text
        assert 'h_bucket{le="+Inf"} 3' in text

    def test_every_sample_line_parses(self):
        registry = MetricsRegistry()
        registry.inc("a.b-c", client="x")
        registry.observe("lat", 0.01, program="p")
        for line in render_prometheus(registry.snapshot()).strip().splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)
            assert name_part[0].isalpha() and "." not in name_part.split("{")[0]


class TestTelemetry:
    def test_span_is_noop_without_trace_id(self):
        telemetry = Telemetry()
        telemetry.span(None, "execute", 0.1)
        assert telemetry.slow() == []

    def test_spans_accumulate_under_one_trace(self):
        telemetry = Telemetry(shard=3)
        trace_id = new_trace_id()
        telemetry.span(trace_id, "queue_wait", 0.01)
        telemetry.span(trace_id, "execute", 0.02, client="alice")
        trace = telemetry.trace_of(trace_id)
        assert [s["stage"] for s in trace["spans"]] == ["queue_wait", "execute"]
        assert all(s["shard"] == 3 for s in trace["spans"])
        assert trace["spans"][1]["client"] == "alice"
        assert telemetry.trace_of("nope") is None

    def test_trace_ring_evicts_oldest(self):
        telemetry = Telemetry(trace_capacity=2)
        ids = [new_trace_id() for _ in range(3)]
        for trace_id in ids:
            telemetry.span(trace_id, "execute", 0.01)
        assert telemetry.trace_of(ids[0]) is None
        assert telemetry.trace_of(ids[1]) is not None
        assert telemetry.trace_of(ids[2]) is not None

    def test_finish_observes_total_latency_for_untraced_requests(self):
        telemetry = Telemetry(slow_threshold=10.0)
        telemetry.finish(None, 0.05, op="submit", program="p")
        hist = telemetry.registry.histogram_of(
            "serving.request.seconds", op="submit", program="p"
        )
        assert hist is not None and hist.count == 1
        assert telemetry.slow() == []

    def test_slow_request_recorded_and_logged(self, caplog):
        telemetry = Telemetry(slow_threshold=0.01, shard=1)
        trace_id = new_trace_id()
        telemetry.span(trace_id, "execute", 0.05)
        with caplog.at_level(logging.WARNING, logger="repro.serving.slow"):
            telemetry.finish(
                trace_id, 0.05, op="submit", client="alice", program="p"
            )
        assert telemetry.registry.counter_value(
            "serving.slow_requests", program="p"
        ) == 1
        records = telemetry.slow()
        assert len(records) == 1
        assert records[0]["trace_id"] == trace_id
        assert records[0]["shard"] == 1
        assert [s["stage"] for s in records[0]["spans"]] == ["execute"]
        assert any(
            getattr(r, "trace_id", None) == trace_id for r in caplog.records
        )

    def test_slow_is_newest_first_and_limited(self):
        telemetry = Telemetry(slow_threshold=0.0)
        for i in range(5):
            telemetry.finish(None, float(i + 1), client=f"c{i}")
        records = telemetry.slow(limit=2)
        assert len(records) == 2
        assert records[0]["client"] == "c4"
        assert records[1]["client"] == "c3"

    def test_merge_traces_orders_spans_and_keeps_metadata(self):
        trace_id = new_trace_id()
        router = {
            "trace_id": trace_id,
            "spans": [{"stage": "router_forward", "seconds": 0.01, "ts": 2.0}],
        }
        shard = {
            "trace_id": trace_id,
            "client": "alice",
            "total_seconds": 0.05,
            "spans": [{"stage": "execute", "seconds": 0.02, "ts": 1.0}],
        }
        merged = merge_traces([None, router, shard])
        assert merged["trace_id"] == trace_id
        assert merged["client"] == "alice"
        assert [s["stage"] for s in merged["spans"]] == [
            "execute",
            "router_forward",
        ]
        assert merge_traces([None, None]) is None


class TestSpliceField:
    def test_splices_into_encoded_response(self):
        line = messages.encode_response(payload={"pong": True})
        spliced = messages.splice_field(line, "trace_id", "abc")
        decoded = json.loads(spliced)
        assert decoded["trace_id"] == "abc"
        assert decoded["pong"] is True
        assert spliced.endswith("\n") == line.endswith("\n")

    def test_splices_structured_value(self):
        spliced = messages.splice_field(
            '{"ok":true}', "trace", {"spans": [1, 2]}
        )
        assert json.loads(spliced) == {"ok": True, "trace": {"spans": [1, 2]}}

    def test_splices_into_empty_object(self):
        assert json.loads(messages.splice_field("{}", "k", 1)) == {"k": 1}


class TestEngineAccounting:
    """Satellite: queue/execute time observed exactly once per job."""

    def _run_jobs(self, max_batch, jobs):
        telemetry = Telemetry(slow_threshold=10.0)
        engine = JobEngine(
            handler=lambda batch: [job.payload for job in batch],
            workers=1,
            max_batch=max_batch,
            batch_window=0.002,
            telemetry=telemetry,
        )
        try:
            futures = [
                engine.submit("group", i, client="alice", program="p")
                for i in range(jobs)
            ]
            assert [f.result(5) for f in futures] == list(range(jobs))
        finally:
            engine.close()
        return telemetry, engine

    @pytest.mark.parametrize("max_batch", [1, 4])
    def test_every_job_observed_exactly_once(self, max_batch):
        jobs = 6
        telemetry, engine = self._run_jobs(max_batch, jobs)
        registry = telemetry.registry
        queue_hist = registry.histogram_of(
            "serving.queue.seconds", client="alice", program="p"
        )
        execute_hist = registry.histogram_of(
            "serving.execute.seconds", client="alice", program="p"
        )
        # Solo batches (max_batch=1) and grouped batches must both account
        # each completed job once — the asymmetry this PR fixed.
        assert queue_hist.count == jobs
        assert execute_hist.count == jobs
        assert registry.counter_value(
            "serving.requests.submitted", client="alice", program="p"
        ) == jobs
        assert registry.counter_value(
            "serving.requests.completed", client="alice", program="p"
        ) == jobs
        summary = engine.metrics_snapshot()
        assert summary["submitted"] == jobs
        assert summary["completed"] == jobs

    def test_batched_execute_time_is_amortized(self):
        # One batch of 4 with a sleeping handler: per-job execute time is the
        # batch's wall time divided by its size, so the 4 observations must
        # sum to ~one batch execution, not four.
        telemetry = Telemetry(slow_threshold=10.0)
        engine = JobEngine(
            handler=lambda batch: (time.sleep(0.05), [j.payload for j in batch])[1],
            workers=1,
            max_batch=4,
            batch_window=0.05,
            telemetry=telemetry,
        )
        try:
            futures = [
                engine.submit("group", i, client="alice", program="p")
                for i in range(4)
            ]
            [f.result(5) for f in futures]
        finally:
            engine.close()
        hist = telemetry.registry.histogram_of(
            "serving.execute.seconds", client="alice", program="p"
        )
        assert hist.count == 4
        assert 0.04 <= hist.sum <= 0.5

    def test_throttled_and_rejected_counters(self):
        telemetry = Telemetry()
        engine = JobEngine(
            handler=lambda batch: [j.payload for j in batch],
            workers=1,
            fairness=FairnessPolicy(quota_rps=0.001, burst=1.0),
            telemetry=telemetry,
        )
        try:
            engine.submit("group", 0, client="alice").result(5)
            with pytest.raises(QuotaExceededError):
                engine.submit("group", 1, client="alice")
        finally:
            engine.close()
        assert telemetry.registry.counter_value(
            "serving.requests.throttled", client="alice"
        ) == 1


class TestServerTelemetryEndToEnd:
    @pytest.fixture
    def traced_server(self):
        server = EvaServer(
            backend=MockBackend(error_model="none", op_latency=0.01),
            workers=2,
            batch_window=0.0,
            telemetry=Telemetry(slow_threshold=0.005),
        )
        server.register("poly", make_poly_program())
        tcp = EvaTcpServer(server, port=0)
        tcp.start_background()
        try:
            yield tcp
        finally:
            tcp.shutdown()
            server.close()

    def test_traced_submit_spans_cover_wall_clock(self, traced_server):
        host, port = traced_server.address
        x = [float(i) for i in range(16)]
        with ServingClient(host, port, timeout=15) as client:
            started = time.perf_counter()
            outputs = client.submit("poly", {"x": x}, client_id="alice", trace=True)
            wall = time.perf_counter() - started
        assert outputs["y"].shape[0] == 16
        trace = client.last_trace
        assert trace is not None
        stages = [span["stage"] for span in trace["spans"]]
        for stage in ("quota_admission", "queue_wait", "execute", "serialize_reply"):
            assert stage in stages, stages
        span_sum = sum(span["seconds"] for span in trace["spans"])
        # The per-stage spans must account for the request's latency: within
        # 10% of the client-measured wall clock (the op_latency backend makes
        # execution dominate, so scheduling noise stays inside the band).
        assert abs(span_sum - wall) / wall < 0.10, (span_sum, wall)
        assert trace["total_seconds"] == pytest.approx(span_sum, rel=0.25)

    def test_untraced_submit_has_no_trace_echo_but_counts(self, traced_server):
        host, port = traced_server.address
        x = [float(i) for i in range(16)]
        with ServingClient(host, port, timeout=15) as client:
            client.submit("poly", {"x": x}, client_id="alice")
            assert client.last_trace is None
            metrics = client.metrics()
        counters = {
            (c["name"], c["labels"].get("client")): c["value"]
            for c in metrics["metrics"]["counters"]
        }
        assert counters[("serving.requests.submitted", "alice")] >= 1
        assert counters[("serving.requests.completed", "alice")] >= 1

    def test_metrics_op_includes_absorbed_component_gauges(self, traced_server):
        host, port = traced_server.address
        x = [float(i) for i in range(16)]
        with ServingClient(host, port, timeout=15) as client:
            client.submit("poly", {"x": x}, client_id="alice")
            metrics = client.metrics(prometheus=True)
        gauge_names = {g["name"] for g in metrics["metrics"]["gauges"]}
        assert any(name.startswith("serving.engine.") for name in gauge_names)
        assert any(name.startswith("serving.registry.") for name in gauge_names)
        text = metrics["prometheus"]
        assert "serving_requests_submitted_total" in text
        assert "serving_queue_seconds_bucket" in text

    def test_slow_request_visible_through_wire(self, traced_server):
        host, port = traced_server.address
        x = [float(i) for i in range(16)]
        with ServingClient(host, port, timeout=15) as client:
            client.submit("poly", {"x": x}, client_id="alice", trace=True)
            trace_id = client.last_trace["trace_id"]
            slow = client.slow()
            fetched = client.trace_of(trace_id)
        assert any(record["trace_id"] == trace_id for record in slow)
        assert fetched["trace_id"] == trace_id
        assert fetched["spans"]

    def test_quota_rejection_echoes_trace_id(self):
        server = EvaServer(
            backend=MockBackend(error_model="none"),
            workers=1,
            batch_window=0.0,
            fairness=FairnessPolicy(quota_rps=0.001, burst=1.0),
        )
        server.register("poly", make_poly_program())
        tcp = EvaTcpServer(server, port=0)
        tcp.start_background()
        x = [float(i) for i in range(16)]
        try:
            with ServingClient(host=tcp.address[0], port=tcp.address[1]) as client:
                client.submit("poly", {"x": x}, client_id="alice", trace=True)
                with pytest.raises(QuotaExceededError) as info:
                    client.submit("poly", {"x": x}, client_id="alice", trace=True)
            assert info.value.trace_id is not None
        finally:
            tcp.shutdown()
            server.close()


class TestStructuredLogging:
    def test_json_formatter_emits_parseable_events(self):
        from repro.serving.telemetry import _JsonLogFormatter

        record = logging.LogRecord(
            name="repro.serving.slow",
            level=logging.WARNING,
            pathname=__file__,
            lineno=1,
            msg="slow request: %.3fs",
            args=(1.25,),
            exc_info=None,
        )
        record.trace_id = "abc"
        record.client = "alice"
        record.op = "submit"
        event = json.loads(_JsonLogFormatter().format(record))
        assert event["level"] == "WARNING"
        assert event["event"] == "slow request: 1.250s"
        assert event["trace_id"] == "abc"
        assert event["client"] == "alice"
        assert event["op"] == "submit"

    def test_configure_logging_is_idempotent(self):
        from repro.serving import configure_logging

        logger = logging.getLogger("repro")
        previous = list(logger.handlers)
        try:
            configure_logging(json_logs=True, level="DEBUG")
            configure_logging(json_logs=True, level="INFO")
            assert len(logger.handlers) == 1
            assert logger.level == logging.INFO
            with pytest.raises(ValueError):
                configure_logging(level="NOPE")
        finally:
            for handler in list(logger.handlers):
                logger.removeHandler(handler)
            for handler in previous:
                logger.addHandler(handler)


class TestCliFlags:
    def test_serve_parser_accepts_telemetry_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "prog.evaproto",
                "--log-json",
                "--log-level",
                "DEBUG",
                "--slow-threshold",
                "0.25",
            ]
        )
        assert args.log_json is True
        assert args.log_level == "DEBUG"
        assert args.slow_threshold == 0.25

    def test_submit_parser_accepts_trace(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["submit", "poly", "--inputs", "in.json", "--trace"]
        )
        assert args.trace is True

    def test_cluster_parser_accepts_observability_actions(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["cluster", "metrics", "--prometheus"])
        assert args.action == "metrics" and args.prometheus
        args = parser.parse_args(["cluster", "trace", "abc123"])
        assert args.action == "trace" and args.trace_id == "abc123"
        args = parser.parse_args(["cluster", "slow", "--limit", "5"])
        assert args.action == "slow" and args.limit == 5
