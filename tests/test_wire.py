"""Tests for the binary wire protocol: frames, codec, negotiation, uploads.

Property/fuzz coverage of the varint and frame codecs (roundtrips on random
values; truncated/oversized/garbage input raises a clean ``TransportError``,
never hangs or over-reads), the envelope+blob message codec, the hello
negotiation (including legacy fallback), chunked streaming uploads, and
mixed-protocol serving — one JSON client and one binary client concurrently
on the same router.
"""

import io
import json
import random
import threading

import numpy as np
import pytest

from repro import wire
from repro.api import ClientKit, CompiledProgram
from repro.backend import MockBackend
from repro.core.serialization import messages
from repro.core.serialization.packing import (
    jsonable_blobs,
    pack_values,
    raw_blobs,
    unpack_values,
)
from repro.errors import SerializationError, ServingError, TransportError
from repro.frontend import EvaProgram, input_encrypted, output
from repro.serving import (
    BackendSpec,
    ClusterTcpServer,
    EvaCluster,
    EvaServer,
    EvaTcpServer,
    ServingClient,
)
from repro.wire.frames import encode_varint


def make_poly_program(name="poly", vec_size=32):
    program = EvaProgram(name, vec_size=vec_size, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("y", x * x + x + 1.0, 25)
    return program


# -- varints -------------------------------------------------------------------


class TestVarints:
    def test_roundtrip_on_random_values(self):
        rng = random.Random(7)
        values = [0, 1, 127, 128, 300, 2**32, 2**63 - 1]
        values += [rng.getrandbits(rng.randint(1, 63)) for _ in range(500)]
        for value in values:
            stream = io.BytesIO(wire.frames.encode_varint(value))
            assert wire.read_varint(stream) == value
            assert stream.read() == b""  # nothing over-read

    def test_encoding_is_minimal_length(self):
        assert encode_varint(0) == b"\x00"
        assert encode_varint(127) == b"\x7f"
        assert encode_varint(128) == b"\x80\x01"
        assert encode_varint(300) == b"\xac\x02"

    def test_negative_rejected(self):
        with pytest.raises(TransportError):
            encode_varint(-1)

    def test_truncated_varint_raises_cleanly(self):
        # Every proper prefix that ends on a continuation byte must raise.
        data = encode_varint(2**40)
        for cut in range(len(data) - 1):
            with pytest.raises(TransportError):
                wire.read_varint(io.BytesIO(data[:cut]))

    def test_overlong_varint_raises(self):
        with pytest.raises(TransportError):
            wire.read_varint(io.BytesIO(b"\x80" * 11))


# -- frames --------------------------------------------------------------------


class TestFrames:
    def test_roundtrip_random_payloads(self):
        rng = random.Random(11)
        for _ in range(50):
            payload = rng.randbytes(rng.randint(0, 4096))
            frame_type = rng.choice(
                [wire.FRAME_REQUEST, wire.FRAME_RESPONSE, wire.FRAME_CHUNK]
            )
            encoded = wire.encode_frame(frame_type, payload)
            stream = io.BytesIO(encoded)
            got_type, got_payload, nbytes = wire.read_frame(stream)
            assert got_type == frame_type
            assert got_payload == payload
            assert nbytes == len(encoded)
            assert stream.read() == b""  # never over-reads

    def test_write_frame_piecewise_equals_encode_frame(self):
        parts = [b"abc", bytearray(b"defg"), memoryview(b"hi")]
        stream = io.BytesIO()
        nbytes = wire.write_frame(stream, wire.FRAME_REQUEST, *parts)
        assert stream.getvalue() == wire.encode_frame(
            wire.FRAME_REQUEST, b"abcdefghi"
        )
        assert nbytes == len(stream.getvalue())

    def test_truncated_frames_raise_cleanly(self):
        encoded = wire.encode_frame(wire.FRAME_REQUEST, b"x" * 100)
        for cut in range(len(encoded)):
            with pytest.raises(TransportError):
                wire.read_frame(io.BytesIO(encoded[:cut]))

    def test_oversized_declared_length_rejected_before_reading(self):
        # A hostile header declaring a huge payload must be rejected from the
        # header alone — the reader must not wait for (or allocate) the body.
        header = bytes([wire.MAGIC, wire.FRAME_REQUEST]) + encode_varint(
            wire.MAX_FRAME_BYTES + 1
        )
        with pytest.raises(TransportError, match="limit"):
            wire.read_frame(io.BytesIO(header))

    def test_garbage_first_byte_and_frame_type_rejected(self):
        with pytest.raises(TransportError):
            wire.read_frame(io.BytesIO(b"{not a frame}\n"))
        with pytest.raises(TransportError):
            wire.read_frame(io.BytesIO(bytes([wire.MAGIC, 0x7F, 0x00])))

    def test_fuzz_garbage_never_hangs_or_overreads(self):
        rng = random.Random(13)
        for _ in range(200):
            blob = rng.randbytes(rng.randint(0, 64))
            stream = io.BytesIO(blob)
            try:
                _type, payload, _n = wire.read_frame(stream)
            except TransportError:
                continue
            assert stream.tell() <= len(blob)
            assert len(payload) <= len(blob)

    def test_oversized_payload_refused_on_write(self):
        class Huge:
            def __len__(self):
                return wire.MAX_FRAME_BYTES + 1

        with pytest.raises(TransportError):
            wire.write_frame(io.BytesIO(), wire.FRAME_REQUEST, Huge())


# -- message codec -------------------------------------------------------------


def random_message(rng):
    """A random request-like dict with packed arrays at random depths."""

    def node(depth):
        roll = rng.random()
        if depth > 2 or roll < 0.35:
            if roll < 0.12:
                return pack_values([rng.uniform(-9, 9) for _ in range(rng.randint(1, 40))])
            return rng.choice([None, True, rng.randint(-1000, 1000), "text", 3.5])
        if roll < 0.7:
            return {f"k{i}": node(depth + 1) for i in range(rng.randint(0, 4))}
        return [node(depth + 1) for i in range(rng.randint(0, 4))]

    return {
        "op": "submit",
        "program": "p",
        "payload": node(0),
        "inputs": {"x": pack_values([rng.random() for _ in range(rng.randint(1, 64))])},
    }


class TestMessageCodec:
    def test_roundtrip_random_nested_messages(self):
        rng = random.Random(17)
        for _ in range(30):
            with raw_blobs():
                message = random_message(rng)
            parts = wire.encode_message(message)
            payload = b"".join(bytes(part) for part in parts)
            envelope, blobs = wire.decode_message(payload)
            restored = wire.rehydrate(envelope, blobs)
            # Raw records survive the trip bit-exactly (as memoryviews).
            assert jsonable_blobs(restored) == jsonable_blobs(message)

    def test_blobs_decode_zero_copy(self):
        with raw_blobs():
            message = {"op": "submit", "inputs": {"x": pack_values([1.0, 2.0, 3.0])}}
        payload = b"".join(bytes(p) for p in wire.encode_message(message))
        _envelope, blobs = wire.decode_message(payload)
        assert len(blobs) == 1
        assert isinstance(blobs[0], memoryview)
        np.testing.assert_allclose(
            unpack_values({"dtype": "f8", "raw": blobs[0]}), [1.0, 2.0, 3.0]
        )

    def test_base64_records_are_lifted_to_raw_blobs(self):
        # A payload built for the JSON wire (b64 records) still gains the
        # binary size win when sent through the binary codec.
        message = {"op": "submit", "inputs": {"x": pack_values([4.0, 5.0])}}
        assert "b64" in message["inputs"]["x"]
        parts = wire.encode_message(message)
        payload = b"".join(bytes(p) for p in parts)
        envelope, blobs = wire.decode_message(payload)
        assert len(blobs) == 1
        restored = wire.rehydrate(envelope, blobs)
        np.testing.assert_allclose(
            unpack_values(restored["inputs"]["x"]), [4.0, 5.0]
        )

    def test_envelope_must_be_present_and_unique(self):
        with pytest.raises(TransportError, match="no envelope"):
            wire.decode_message(b"")
        env = wire.encode_envelope({"op": "ping"})
        with pytest.raises(TransportError, match="two envelopes"):
            wire.decode_message(env + env)

    def test_peek_and_replace_envelope_preserve_blobs(self):
        with raw_blobs():
            message = {
                "op": "submit",
                "client_id": "alice",
                "inputs": {"x": pack_values([7.0, 8.0])},
            }
        payload = b"".join(bytes(p) for p in wire.encode_message(message))
        envelope, end = wire.peek_envelope(payload)
        assert envelope["op"] == "submit"
        assert end < len(payload)
        envelope["trace_id"] = "t-123"
        spliced = b"".join(
            bytes(p) for p in wire.replace_envelope(payload, envelope)
        )
        new_envelope, blobs = wire.decode_message(spliced)
        assert new_envelope["trace_id"] == "t-123"
        restored = wire.rehydrate(new_envelope, blobs)
        np.testing.assert_allclose(
            unpack_values(restored["inputs"]["x"]), [7.0, 8.0]
        )

    def test_bad_blob_reference_raises(self):
        with pytest.raises(TransportError):
            wire.rehydrate({"x": {"dtype": "f8", wire.BLOB_KEY: 3}}, [])

    def test_fuzz_garbage_payloads_raise_cleanly(self):
        rng = random.Random(19)
        for _ in range(300):
            blob = rng.randbytes(rng.randint(0, 80))
            try:
                wire.decode_message(blob)
            except TransportError:
                pass  # the only acceptable failure mode


# -- negotiation ---------------------------------------------------------------


class TestNegotiation:
    def test_hello_ack_grants_binary_under_auto_policy(self):
        reply, proto = wire.hello_ack(wire.build_hello("auto"), "auto")
        assert proto == "binary"
        assert reply == {"ok": True, "wire": "binary", "version": wire.PROTOCOL_VERSION}

    def test_hello_ack_pins_json_when_policy_is_json(self):
        reply, proto = wire.hello_ack(wire.build_hello("binary"), "json")
        assert proto == "json"
        assert reply["wire"] == "json"

    def test_hello_ack_refuses_unknown_versions(self):
        hello = {"op": "hello", "wire": "binary", "versions": [99]}
        _reply, proto = wire.hello_ack(hello, "auto")
        assert proto == "json"

    def test_parse_reply_auto_falls_back_on_legacy_error(self):
        legacy = {"ok": False, "error": "unknown request op 'hello'"}
        assert wire.parse_hello_reply(legacy, "auto") == ("json", None)

    def test_parse_reply_forced_binary_raises_on_refusal(self):
        with pytest.raises(ServingError, match="binary"):
            wire.parse_hello_reply({"ok": True, "wire": "json"}, "binary")

    def test_parse_reply_rejects_version_mismatch(self):
        with pytest.raises(ServingError, match="version"):
            wire.parse_hello_reply({"ok": True, "wire": "binary", "version": 2}, "auto")


# -- chunked uploads -----------------------------------------------------------


class TestUploadState:
    def chunk(self, state, upload, blob, data, eof=False):
        state.add_chunk({"upload": upload, "blob": blob, "eof": eof}, data)

    def test_interleaved_blobs_assemble_in_order(self):
        state = wire.UploadState()
        self.chunk(state, "u1", 0, b"aa")
        self.chunk(state, "u1", 1, b"xx")
        self.chunk(state, "u1", 0, b"bb", eof=True)
        self.chunk(state, "u1", 1, b"yy", eof=True)
        blobs = state.finish("u1")
        assert [bytes(b) for b in blobs] == [b"aabb", b"xxyy"]
        assert len(state) == 0

    def test_unknown_and_incomplete_uploads_raise(self):
        state = wire.UploadState()
        with pytest.raises(SerializationError, match="unknown upload"):
            state.finish("nope")
        self.chunk(state, "u1", 0, b"aa")  # no eof
        with pytest.raises(SerializationError, match="incomplete"):
            state.finish("u1")

    def test_byte_cap_poisons_the_upload(self):
        state = wire.UploadState(max_bytes=10)
        self.chunk(state, "u1", 0, b"x" * 20, eof=True)
        with pytest.raises(SerializationError, match="cap"):
            state.finish("u1")

    def test_out_of_order_blob_index_poisons(self):
        state = wire.UploadState()
        self.chunk(state, "u1", 2, b"zz")
        with pytest.raises(SerializationError, match="out of order"):
            state.finish("u1")

    def test_append_after_eof_poisons(self):
        state = wire.UploadState()
        self.chunk(state, "u1", 0, b"aa", eof=True)
        self.chunk(state, "u1", 0, b"bb")
        with pytest.raises(SerializationError, match="finished"):
            state.finish("u1")

    def test_too_many_concurrent_uploads_poisons_the_extra(self):
        state = wire.UploadState(max_uploads=2)
        self.chunk(state, "u1", 0, b"a", eof=True)
        self.chunk(state, "u2", 0, b"b", eof=True)
        self.chunk(state, "u3", 0, b"c", eof=True)
        assert [bytes(b) for b in state.finish("u1")] == [b"a"]
        with pytest.raises(SerializationError, match="concurrent uploads"):
            state.finish("u3")

    def test_iter_chunks_covers_blob_exactly(self):
        blob = bytes(range(256)) * 5
        chunks = list(wire.iter_chunks(blob, size=100))
        assert all(len(c) <= 100 for c in chunks)
        assert b"".join(bytes(c) for c in chunks) == blob
        assert list(wire.iter_chunks(b"", size=4)) == [memoryview(b"")]


# -- end-to-end over TCP -------------------------------------------------------


@pytest.fixture
def tcp_server():
    server = EvaServer(backend=MockBackend(error_model="none"), workers=2)
    server.register("poly", make_poly_program())
    tcp = EvaTcpServer(server, port=0)
    tcp.start_background()
    try:
        yield tcp
    finally:
        tcp.shutdown()
        server.close()


class TestServingOverBinaryWire:
    def test_auto_client_negotiates_binary(self, tcp_server):
        host, port = tcp_server.address
        with ServingClient(host, port) as client:
            assert client.protocol == "binary"
            assert client.protocol_version == wire.PROTOCOL_VERSION
            outputs = client.submit("poly", {"x": [1.0, 2.0]})
        np.testing.assert_allclose(outputs["y"], [3.0, 7.0], atol=1e-6)

    def test_json_pinned_server_negotiates_down(self):
        server = EvaServer(backend=MockBackend(error_model="none"), workers=1)
        server.register("poly", make_poly_program())
        tcp = EvaTcpServer(server, port=0, wire_policy="json")
        tcp.start_background()
        try:
            host, port = tcp.address
            with ServingClient(host, port, wire="auto") as client:
                assert client.protocol == "json"
                outputs = client.submit("poly", {"x": [1.0]})
                np.testing.assert_allclose(outputs["y"], [3.0], atol=1e-6)
            with pytest.raises(ServingError, match="binary"):
                ServingClient(host, port, wire="binary")
        finally:
            tcp.shutdown()
            server.close()

    def test_binary_and_json_clients_agree(self, tcp_server):
        host, port = tcp_server.address
        x = [float(i) for i in range(8)]
        with ServingClient(host, port, wire="binary") as binary_client:
            with ServingClient(host, port, wire="json") as json_client:
                binary_out = binary_client.submit("poly", {"x": x})
                json_out = json_client.submit("poly", {"x": x})
        np.testing.assert_allclose(binary_out["y"], json_out["y"], atol=1e-6)

    def test_byte_counters_and_net_metrics(self, tcp_server):
        host, port = tcp_server.address
        with ServingClient(host, port, wire="binary") as client:
            client.submit("poly", {"x": [1.0, 2.0]})
            assert client.bytes_sent > 0
            assert client.bytes_received > 0
            metrics = client.metrics()["metrics"]
        counters = {
            (c["name"], c["labels"].get("protocol")): c["value"]
            for c in metrics["counters"]
        }
        assert counters.get(("net.bytes_received", "binary"), 0) > 0
        assert counters.get(("net.bytes_sent", "binary"), 0) > 0

    def test_stats_reports_connection_protocols(self, tcp_server):
        host, port = tcp_server.address
        with ServingClient(host, port, wire="binary") as binary_client:
            with ServingClient(host, port, wire="json") as json_client:
                binary_client.ping()
                stats = json_client.stats()
        protocols = sorted(c["protocol"] for c in stats["connections"])
        assert "binary" in protocols and "json" in protocols

    def test_binary_error_replies_are_framed_and_typed(self, tcp_server):
        host, port = tcp_server.address
        with ServingClient(host, port, wire="binary") as client:
            with pytest.raises(ServingError, match="no program registered"):
                client.submit("nope", {"x": [1.0]})
            # The connection survives the error reply.
            assert client.ping()

    def test_encrypted_session_and_submit_over_binary(self, tcp_server):
        host, port = tcp_server.address
        program = make_poly_program()
        kit = ClientKit(
            CompiledProgram.compile(program.graph),
            backend=MockBackend(error_model="none"),
            client_id="alice",
        )
        with ServingClient(host, port, wire="binary") as client:
            session = client.create_session("poly", kit)
            assert session["client_id"] == "alice"
            outputs = client.submit_encrypted(
                "poly", kit, {"x": [1.0, 2.0]}, client_id="alice"
            )
        np.testing.assert_allclose(outputs["y"][:2], [3.0, 7.0], atol=1e-6)

    def test_chunked_upload_streams_large_sessions(self, tcp_server, monkeypatch):
        # Force the streaming path with a tiny threshold: the key set is sent
        # as CHUNK frames and the final request references the upload.
        from repro.serving import netserver

        monkeypatch.setattr(netserver, "STREAM_THRESHOLD_BYTES", 64)
        host, port = tcp_server.address
        program = make_poly_program()
        kit = ClientKit(
            CompiledProgram.compile(program.graph),
            backend=MockBackend(error_model="none"),
            client_id="bob",
        )
        with ServingClient(host, port, wire="binary") as client:
            session = client.create_session("poly", kit)
            assert session["client_id"] == "bob"
            outputs = client.submit_encrypted(
                "poly", kit, {"x": [2.0]}, client_id="bob"
            )
        np.testing.assert_allclose(outputs["y"][:1], [7.0], atol=1e-6)

    def test_upload_violations_surface_as_error_replies(self, tcp_server):
        host, port = tcp_server.address
        with ServingClient(host, port, wire="binary") as client:
            # Reference an upload that was never streamed.
            envelope, _blobs = wire.split_message(
                messages.build_request("session", program="poly",
                                       evaluation_keys={"k": 1})
            )
            envelope[wire.UPLOAD_KEY] = "never-streamed"
            client.send_frame(wire.FRAME_REQUEST, wire.encode_envelope(envelope))
            kind, payload = client._read_reply_unit()
            assert kind == "binary"
            reply, _ = wire.decode_message(payload)
            assert reply["ok"] is False
            assert reply["kind"] == "SerializationError"
            # The connection is still usable.
            assert client.ping()


class TestMixedProtocolCluster:
    def test_json_and_binary_clients_share_one_router(self, tmp_path):
        cluster = EvaCluster(
            shards=2,
            backend=BackendSpec(name="mock-exact"),
            session_dir=str(tmp_path / "sessions"),
            workers=1,
            batch_window=0.0,
        )
        cluster.register("poly", make_poly_program())
        cluster.start()
        router = ClusterTcpServer(cluster, port=0)
        router.start_background()
        try:
            host, port = router.address
            x = [float(i) for i in range(8)]
            results = {}
            errors = []

            def run(mode, client_id):
                try:
                    with ServingClient(host, port, wire=mode) as client:
                        assert client.protocol == (
                            "binary" if mode == "binary" else "json"
                        )
                        out = []
                        for _ in range(5):
                            out.append(
                                client.submit("poly", {"x": x}, client_id=client_id)
                            )
                        results[mode] = out
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append((mode, exc))

            threads = [
                threading.Thread(target=run, args=("binary", "alice")),
                threading.Thread(target=run, args=("json", "bob")),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, errors
            for mode in ("binary", "json"):
                for out in results[mode]:
                    np.testing.assert_allclose(
                        out["y"], [v * v + v + 1.0 for v in x], atol=1e-6
                    )
            # The router saw both protocols on its listener.
            with ServingClient(host, port, wire="json") as admin:
                stats = admin.stats()
                protocols = {c["protocol"] for c in stats["connections"]}
                assert "json" in protocols
                metrics = admin.metrics()["metrics"]
            counters = {
                (c["name"], c["labels"].get("protocol"))
                for c in metrics["counters"]
            }
            assert ("net.bytes_received", "binary") in counters
            assert ("net.bytes_received", "json") in counters
        finally:
            router.shutdown()
            cluster.close()

    def test_binary_session_routes_through_router(self, tmp_path):
        cluster = EvaCluster(
            shards=2,
            backend=BackendSpec(name="mock-exact"),
            session_dir=str(tmp_path / "sessions"),
            workers=1,
            batch_window=0.0,
        )
        cluster.register("poly", make_poly_program())
        cluster.start()
        router = ClusterTcpServer(cluster, port=0)
        router.start_background()
        try:
            host, port = router.address
            program = make_poly_program()
            kit = ClientKit(
                CompiledProgram.compile(program.graph),
                backend=MockBackend(error_model="none"),
                client_id="carol",
            )
            with ServingClient(host, port, wire="binary") as client:
                session = client.create_session("poly", kit)
                assert session["client_id"] == "carol"
                outputs = client.submit_encrypted(
                    "poly", kit, {"x": [1.0, 3.0]}, client_id="carol"
                )
            np.testing.assert_allclose(outputs["y"][:2], [3.0, 13.0], atol=1e-6)
        finally:
            router.shutdown()
            cluster.close()

    def test_chunked_upload_streams_through_router(self, tmp_path, monkeypatch):
        from repro.serving import netserver

        monkeypatch.setattr(netserver, "STREAM_THRESHOLD_BYTES", 64)
        cluster = EvaCluster(
            shards=2,
            backend=BackendSpec(name="mock-exact"),
            session_dir=str(tmp_path / "sessions"),
            workers=1,
            batch_window=0.0,
        )
        cluster.register("poly", make_poly_program())
        cluster.start()
        router = ClusterTcpServer(cluster, port=0)
        router.start_background()
        try:
            host, port = router.address
            program = make_poly_program()
            kit = ClientKit(
                CompiledProgram.compile(program.graph),
                backend=MockBackend(error_model="none"),
                client_id="dave",
            )
            with ServingClient(host, port, wire="binary") as client:
                session = client.create_session("poly", kit)
                assert session["client_id"] == "dave"
                outputs = client.submit_encrypted(
                    "poly", kit, {"x": [2.0, 4.0]}, client_id="dave"
                )
            np.testing.assert_allclose(outputs["y"][:2], [7.0, 21.0], atol=1e-6)
        finally:
            router.shutdown()
            cluster.close()
