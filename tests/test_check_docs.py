"""The docs drift gate: passes on the real tree, fails on doctored docs."""

import importlib.util
import shutil
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCheckDocs:
    def test_real_docs_are_clean(self, check_docs):
        assert check_docs.check(REPO_ROOT / "docs") == []
        assert check_docs.main(["--docs-dir", str(REPO_ROOT / "docs")]) == 0

    def test_ground_truth_is_nonempty(self, check_docs):
        metrics = check_docs.catalogue_metrics()
        assert "serving.slo.attained" in metrics
        assert "cluster.scale.up" in metrics
        surface = dict(check_docs.cli_surface())
        assert "--deadline-ms" in surface["submit"]
        assert "--cluster-config" in surface["serve"]
        assert "join" in check_docs.wire_ops()

    def test_fails_on_doctored_docs(self, check_docs, tmp_path):
        docs = tmp_path / "docs"
        shutil.copytree(REPO_ROOT / "docs", docs)

        # Erase one item of each kind from the doctored copy.
        metrics = docs / "metrics.md"
        metrics.write_text(
            metrics.read_text().replace("serving.slo.rejected", "serving.slo.redacted")
        )
        operations = docs / "operations.md"
        operations.write_text(
            operations.read_text().replace("--deadline-ms", "--deadline-redacted")
        )
        wire = docs / "wire-protocol.md"
        wire.write_text(wire.read_text().replace("`join`", "`redacted`"))

        missing = check_docs.check(docs)
        assert any("serving.slo.rejected" in item for item in missing)
        assert any("--deadline-ms" in item for item in missing)
        assert any("`join`" in item for item in missing)
        assert check_docs.main(["--docs-dir", str(docs)]) == 1

    def test_fails_on_missing_doc_file(self, check_docs, tmp_path):
        docs = tmp_path / "docs"
        shutil.copytree(REPO_ROOT / "docs", docs)
        (docs / "wire-protocol.md").unlink()
        missing = check_docs.check(docs)
        assert any("file missing" in item for item in missing)
