"""Tests for the client/server API split (:mod:`repro.api`).

The acceptance property of the redesign: a :class:`ServerRuntime` evaluates a
:class:`ClientKit`-encrypted bundle without ever receiving the secret key or
plaintext inputs, the decrypted results match :func:`execute_reference`, and
the same bundle round-trips through :class:`EvaServer` over the TCP
transport, while the legacy one-shot :class:`Executor` keeps working as a
compatibility wrapper.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.api import (
    ClientKit,
    CompiledProgram,
    EncryptedOutputs,
    Executor,
    ServerRuntime,
    bundle_from_wire,
    eva_program,
    execute_reference,
)
from repro.backend import CkksBackend, MockBackend
from repro.core import CompilerOptions, program_signature
from repro.errors import CompilationError, ExecutionError, ServingError
from repro.frontend import EvaProgram, input_encrypted, input_plain, output
from repro.serving import EvaServer, EvaTcpServer, ServingClient


def make_program(vec_size=32, scale=25):
    program = EvaProgram("poly", vec_size=vec_size, default_scale=scale)
    with program:
        x = input_encrypted("x", scale)
        output("y", x * x + x / 2 + 1.0, scale)
    return program


def expected(xv):
    return xv * xv + xv / 2 + 1.0


@pytest.fixture
def compiled():
    return CompiledProgram.compile(make_program())


@pytest.fixture
def split(compiled):
    """A (client, server) pair over a noiseless mock backend."""
    backend = MockBackend(error_model="none")
    client = ClientKit(compiled, backend=backend, client_id="alice")
    server = ServerRuntime(compiled, backend=backend)
    server.attach_client("alice", client.evaluation_context())
    return client, server


class TestCompiledProgram:
    def test_compile_from_eva_program(self, compiled):
        assert compiled.name == "poly"
        assert compiled.vec_size == 32
        assert compiled.rotation_steps == []
        assert compiled.signature == program_signature(compiled.source)

    def test_signature_matches_serving_registry_key(self, compiled):
        """Client artifact and server ProgramSpec agree without coordination."""
        server = EvaServer(backend=MockBackend())
        spec = server.register("poly", make_program())
        assert spec.signature == compiled.signature
        server.close()

    def test_signature_consistent_across_construction_paths(self, compiled):
        """Every way of wrapping the same compilation yields the signature
        compile() computed — the compiler stamps it on the result."""
        rewrapped = CompiledProgram(compiled.compilation, source=compiled.source)
        assert rewrapped.signature == compiled.signature
        bare = CompiledProgram(compiled.compilation)
        assert bare.signature == compiled.signature

    def test_raw_compilation_result_interoperates_with_server(self):
        """A ClientKit built on program.compile() output (no CompiledProgram)
        must produce bundles a server that registered the source accepts."""
        program = make_program()
        compilation = program.compile()
        kit = ClientKit(compilation, backend=MockBackend(error_model="none"))
        server = EvaServer(backend=MockBackend(error_model="none"))
        try:
            server.register("poly", make_program())
            server.create_session("poly", kit.client_id, kit.evaluation_context())
            xv = np.linspace(-1, 1, 32)
            response = server.request_encrypted("poly", kit.encrypt_inputs({"x": xv}))
            outputs = kit.decrypt_outputs(response.outputs)
            np.testing.assert_allclose(outputs["y"], expected(xv), atol=1e-9)
        finally:
            server.close()

    def test_save_load_roundtrip(self, compiled, tmp_path):
        path = tmp_path / "poly.cp.json"
        compiled.save(path)
        loaded = CompiledProgram.load(path)
        assert loaded.signature == compiled.signature
        assert loaded.vec_size == compiled.vec_size
        assert loaded.parameters.poly_modulus_degree == compiled.parameters.poly_modulus_degree
        assert loaded.parameters.coeff_modulus_bits == compiled.parameters.coeff_modulus_bits
        assert loaded.rotation_steps == compiled.rotation_steps
        assert loaded.options.policy == compiled.options.policy
        assert loaded.source is not None

    def test_loaded_artifact_executes(self, compiled, tmp_path):
        path = tmp_path / "poly.cp.json"
        compiled.save(path)
        loaded = CompiledProgram.load(path)
        backend = MockBackend(error_model="none")
        client = ClientKit(loaded, backend=backend)
        server = ServerRuntime(loaded, backend=backend)
        server.attach_client("default", client.evaluation_context())
        xv = np.linspace(-1, 1, 32)
        outputs = client.decrypt_outputs(server.evaluate(client.encrypt_inputs({"x": xv})))
        np.testing.assert_allclose(outputs["y"], expected(xv), atol=1e-9)

    def test_load_rejects_non_artifacts(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"not": "an artifact"}))
        with pytest.raises(Exception, match="not a compiled program artifact"):
            CompiledProgram.load(path)
        with pytest.raises(Exception, match="no such"):
            CompiledProgram.load(tmp_path / "missing.json")

    def test_execute_reference_uses_source_semantics(self, compiled):
        xv = np.linspace(-1, 1, 32)
        np.testing.assert_allclose(
            compiled.execute_reference({"x": xv})["y"], expected(xv), atol=1e-12
        )


class TestServerBoundary:
    """The acceptance tests: the server never sees secrets or plaintext."""

    def test_end_to_end_matches_reference(self, split):
        client, server = split
        xv = np.linspace(-1, 1, 32)
        bundle = client.encrypt_inputs({"x": xv})
        encrypted = server.evaluate(bundle)
        outputs = client.decrypt_outputs(encrypted)
        reference = execute_reference(client.compiled.source, {"x": xv})
        np.testing.assert_allclose(outputs["y"], reference["y"], atol=1e-9)

    def test_server_context_has_no_secret_key(self, split):
        client, server = split
        context = server.client_context("alice")
        assert context.has_secret_key is False
        assert client.context.has_secret_key is True

    def test_server_cannot_decrypt(self, split):
        client, server = split
        bundle = client.encrypt_inputs({"x": np.linspace(-1, 1, 32)})
        encrypted = server.evaluate(bundle)
        context = server.client_context("alice")
        with pytest.raises(ExecutionError, match="no secret key"):
            context.decrypt(encrypted.ciphertexts["y"])

    def test_server_never_calls_decrypt(self, split, monkeypatch):
        """Instrumented proof: evaluation performs zero decrypt calls."""
        client, server = split
        context = server.client_context("alice")
        calls = []
        original = type(context).decrypt
        monkeypatch.setattr(
            type(context), "decrypt", lambda self, h: calls.append(1) or original(self, h)
        )
        server.evaluate(client.encrypt_inputs({"x": np.linspace(-1, 1, 32)}))
        assert calls == []

    def test_bundle_carries_no_plaintext_for_cipher_inputs(self, split):
        client, _server = split
        bundle = client.encrypt_inputs({"x": np.linspace(-1, 1, 32)})
        assert set(bundle.ciphertexts) == {"x"}
        assert bundle.plain == {}

    def test_plain_inputs_travel_unencrypted(self):
        program = EvaProgram("mixed", vec_size=16, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            m = input_plain("mask", 25)
            output("y", x * m, 25)
        compiled = CompiledProgram.compile(program)
        backend = MockBackend(error_model="none")
        client = ClientKit(compiled, backend=backend)
        server = ServerRuntime(compiled, backend=backend)
        server.attach_client("default", client.evaluation_context())
        xv = np.linspace(-1, 1, 16)
        mask = (np.arange(16) % 2).astype(float)
        bundle = client.encrypt_inputs({"x": xv, "mask": mask})
        assert set(bundle.ciphertexts) == {"x"}
        assert set(bundle.plain) == {"mask"}
        outputs = client.decrypt_outputs(server.evaluate(bundle))
        np.testing.assert_allclose(outputs["y"], xv * mask, atol=1e-9)

    def test_secret_contexts_are_refused(self, split, compiled):
        client, server = split
        with pytest.raises(ExecutionError, match="refuses contexts holding a secret key"):
            server.attach_client("bob", client.context)
        bundle = client.encrypt_inputs({"x": np.zeros(32)})
        with pytest.raises(ExecutionError, match="refuses contexts"):
            server.evaluate(bundle, context=client.context)

    def test_signature_mismatch_is_refused(self, split):
        client, server = split
        other = CompiledProgram.compile(
            make_program(), options=CompilerOptions(policy="chet")
        )
        other_client = ClientKit(other, backend=MockBackend(error_model="none"))
        bundle = other_client.encrypt_inputs({"x": np.zeros(32)})
        bundle.client_id = "alice"
        with pytest.raises(ExecutionError, match="different compilation"):
            server.evaluate(bundle)

    def test_unknown_client_is_refused(self, split):
        client, server = split
        bundle = client.encrypt_inputs({"x": np.zeros(32)})
        bundle.client_id = "nobody"
        with pytest.raises(ExecutionError, match="no evaluation keys attached"):
            server.evaluate(bundle)

    def test_missing_input_is_refused_extras_ignored(self, compiled):
        client = ClientKit(compiled, backend=MockBackend())
        with pytest.raises(ExecutionError, match="missing value"):
            client.encrypt_inputs({})
        # Extra names are tolerated (the Executor semantics): a dead input the
        # compiler pruned may legitimately still receive a value.
        bundle = client.encrypt_inputs({"x": np.zeros(32), "zz": 1.0})
        assert set(bundle.ciphertexts) == {"x"}

    def test_dead_inputs_survive_save_load(self, tmp_path):
        """The pre-save and post-load kits accept the same input dicts even
        when the serialization layer drops declared-but-dead inputs."""
        program = EvaProgram("dead", vec_size=16, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            _unused = input_encrypted("unused", 25)
            output("y", x * x, 25)
        compiled = CompiledProgram.compile(program)
        inputs = {"x": np.linspace(-1, 1, 16), "unused": np.zeros(16)}
        backend = MockBackend(error_model="none")
        ClientKit(compiled, backend=backend).encrypt_inputs(inputs)
        path = tmp_path / "dead.cp.json"
        compiled.save(path)
        loaded_kit = ClientKit(CompiledProgram.load(path), backend=backend)
        bundle = loaded_kit.encrypt_inputs(inputs)
        assert set(bundle.ciphertexts) == {"x"}

    def test_bundle_reusable_after_evaluation(self, split):
        """Evaluation must not release/mutate the client's input handles."""
        client, server = split
        xv = np.linspace(-1, 1, 32)
        bundle = client.encrypt_inputs({"x": xv})
        first = client.decrypt_outputs(server.evaluate(bundle))
        second = client.decrypt_outputs(server.evaluate(bundle))
        np.testing.assert_allclose(first["y"], second["y"], atol=1e-12)
        # ...and it still serializes afterwards.
        client.bundle_to_wire(bundle)


class TestWireRoundTrip:
    def test_bundle_survives_json(self, split):
        client, server = split
        xv = np.linspace(-1, 1, 32)
        wire = json.loads(json.dumps(client.bundle_to_wire(client.encrypt_inputs({"x": xv}))))
        reply = json.loads(json.dumps(server.evaluate_wire(wire)))
        outputs = client.decrypt_outputs(client.outputs_from_wire(reply))
        np.testing.assert_allclose(outputs["y"], expected(xv), atol=1e-9)

    def test_wire_path_releases_server_handles(self, split):
        """Repeated wire evaluations must not grow the session context's
        live-ciphertext accounting without bound."""
        client, server = split
        xv = np.linspace(-1, 1, 32)
        wire = client.bundle_to_wire(client.encrypt_inputs({"x": xv}))
        context = server.client_context("alice")
        for _ in range(3):
            server.evaluate_wire(json.loads(json.dumps(wire)))
        assert context.live_ciphertexts == 0

    def test_exported_keys_survive_json(self, compiled):
        backend = MockBackend(error_model="none")
        client = ClientKit(compiled, backend=backend, client_id="carol")
        server = ServerRuntime(compiled, backend=backend)
        blob = json.loads(json.dumps(client.export_evaluation_keys()))
        context = server.attach_client("carol", blob)
        assert context.has_secret_key is False
        xv = np.linspace(-1, 1, 32)
        outputs = client.decrypt_outputs(server.evaluate(client.encrypt_inputs({"x": xv})))
        np.testing.assert_allclose(outputs["y"], expected(xv), atol=1e-9)

    def test_malformed_bundles_are_rejected(self, split):
        client, _server = split
        with pytest.raises(Exception, match="malformed|program_signature"):
            bundle_from_wire({"vec_size": 2}, client.context)
        with pytest.raises(Exception, match="mock"):
            client.context.decode_cipher({"scheme": "nope"})


class TestCkksBoundary:
    """The same boundary on the real RNS-CKKS backend: genuine RLWE ciphertexts."""

    OPTIONS = CompilerOptions(max_rescale_bits=25)

    def _compiled(self):
        program = EvaProgram("ckks-poly", vec_size=128, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("y", x * x * 0.5 + (x << 3) + 1.0, 25)
        return CompiledProgram.compile(program, options=self.OPTIONS)

    def test_blind_evaluation_with_exported_keys(self):
        compiled = self._compiled()
        backend = CkksBackend(seed=7)
        client = ClientKit(compiled, backend=backend, client_id="alice")
        server = ServerRuntime(compiled, backend=backend)
        # Full wire fidelity: keys and ciphertexts cross a JSON boundary.
        blob = json.loads(json.dumps(client.export_evaluation_keys()))
        assert "public_key" in blob and "relin_key" in blob and "galois_keys" in blob
        context = server.attach_client("alice", blob)
        assert context.has_secret_key is False
        assert context.decryptor is None and context.keygen is None

        xv = np.linspace(-1, 1, 128)
        wire = json.loads(json.dumps(client.bundle_to_wire(client.encrypt_inputs({"x": xv}))))
        reply = server.evaluate_wire(wire)
        outputs = client.decrypt_outputs(client.outputs_from_wire(reply))
        reference = execute_reference(compiled.source, {"x": xv})
        assert np.max(np.abs(outputs["y"] - reference["y"])) < 0.05

    def test_ckks_server_cannot_decrypt(self):
        compiled = self._compiled()
        backend = CkksBackend(seed=3)
        client = ClientKit(compiled, backend=backend)
        server = ServerRuntime(compiled, backend=backend)
        server.attach_client("default", client.evaluation_context())
        encrypted = server.evaluate(client.encrypt_inputs({"x": np.linspace(-1, 1, 128)}))
        with pytest.raises(ExecutionError, match="no secret key"):
            server.client_context("default").decrypt(encrypted.ciphertexts["y"])


class TestEvaServerEncryptedPath:
    def _server_and_kit(self, backend=None):
        backend = backend or MockBackend(error_model="none")
        server = EvaServer(backend=backend, batch_window=0.0)
        server.register("poly", make_program())
        kit = ClientKit(
            CompiledProgram.compile(make_program()), backend=backend, client_id="alice"
        )
        return server, kit

    def test_in_process_encrypted_request(self):
        server, kit = self._server_and_kit()
        try:
            server.create_session("poly", "alice", kit.evaluation_context())
            xv = np.linspace(-1, 1, 32)
            response = server.request_encrypted("poly", kit.encrypt_inputs({"x": xv}))
            assert isinstance(response.outputs, EncryptedOutputs)
            assert response.stats_dict()["encrypted"] is True
            outputs = kit.decrypt_outputs(response.outputs)
            np.testing.assert_allclose(outputs["y"], expected(xv), atol=1e-9)
        finally:
            server.close()

    def test_encrypted_request_requires_session(self):
        server, kit = self._server_and_kit()
        try:
            future = server.submit_encrypted("poly", kit.encrypt_inputs({"x": np.zeros(32)}))
            with pytest.raises(ServingError, match="not registered evaluation keys"):
                future.result(timeout=5)
        finally:
            server.close()

    def test_session_refuses_secret_contexts(self):
        server, kit = self._server_and_kit()
        try:
            with pytest.raises(ServingError, match="evaluation-only"):
                server.create_session("poly", "alice", kit.context)
        finally:
            server.close()

    def test_plaintext_and_encrypted_paths_coexist(self):
        server, kit = self._server_and_kit()
        try:
            server.create_session("poly", "alice", kit.evaluation_context())
            xv = np.linspace(-1, 1, 32)
            plain = server.request("poly", {"x": xv}, client_id="bob")
            encrypted = kit.decrypt_outputs(
                server.request_encrypted("poly", kit.encrypt_inputs({"x": xv})).outputs
            )
            np.testing.assert_allclose(plain["y"], encrypted["y"], atol=1e-9)
        finally:
            server.close()

    def test_same_client_keeps_plaintext_path_after_session(self):
        """Registering evaluation keys must not hijack the client's plaintext
        sessions: the attached (secret-key-less) context lives in its own
        namespace, so a plaintext submit still gets a decrypting context."""
        server, kit = self._server_and_kit()
        try:
            server.create_session("poly", "alice", kit.evaluation_context())
            xv = np.linspace(-1, 1, 32)
            encrypted = kit.decrypt_outputs(
                server.request_encrypted("poly", kit.encrypt_inputs({"x": xv})).outputs
            )
            plain = server.request("poly", {"x": xv}, client_id="alice")
            np.testing.assert_allclose(plain["y"], encrypted["y"], atol=1e-9)
            assert server.sessions.summary()["client_keyed"] == 1
        finally:
            server.close()

    def test_client_id_override_propagates(self):
        server, kit = self._server_and_kit()
        tcp = EvaTcpServer(server, port=0)
        tcp.start_background()
        host, port = tcp.address
        try:
            with ServingClient(host, port) as client:
                client.create_session("poly", kit, client_id="override")
                xv = np.linspace(-1, 1, 32)
                outputs = client.submit_encrypted(
                    "poly", kit, {"x": xv}, client_id="override"
                )
                np.testing.assert_allclose(outputs["y"], expected(xv), atol=1e-9)
        finally:
            tcp.shutdown()
            server.close()

    def test_tcp_round_trip(self):
        """The full acceptance path: session + encrypted submit over TCP."""
        server, kit = self._server_and_kit()
        tcp = EvaTcpServer(server, port=0)
        tcp.start_background()
        host, port = tcp.address
        try:
            with ServingClient(host, port) as client:
                session = client.create_session("poly", kit)
                assert session["signature"] == kit.compiled.signature
                xv = np.linspace(-1, 1, 32)
                outputs = client.submit_encrypted("poly", kit, {"x": xv})
                reference = execute_reference(kit.compiled.source, {"x": xv})
                np.testing.assert_allclose(outputs["y"], reference["y"], atol=1e-9)
                assert client.last_stats["encrypted"] is True
                # plaintext submits still work on the same socket
                plain = client.submit("poly", {"x": xv}, client_id="bob")
                np.testing.assert_allclose(plain["y"], reference["y"], atol=1e-9)
        finally:
            tcp.shutdown()
            server.close()

    def test_client_side_packing_through_server(self):
        server, kit = self._server_and_kit()
        try:
            server.create_session("poly", "alice", kit.evaluation_context())
            requests = [{"x": [0.1] * 4}, {"x": [0.2] * 4}, {"x": [0.3] * 4}]
            bundle, plan = kit.encrypt_packed(requests)
            response = server.request_encrypted("poly", bundle)
            per_request = kit.decrypt_packed(plan, response.outputs)
            for request, result in zip(requests, per_request):
                np.testing.assert_allclose(
                    result["y"], expected(np.asarray(request["x"])), atol=1e-9
                )
        finally:
            server.close()


class TestEvaProgramFamily:
    def test_instantiation_cached_per_parameterization(self):
        @eva_program(vec_size=16, default_scale=25)
        def family(x):
            return x * x

        assert family() is family()
        assert family(vec_size=32) is family(vec_size=32)
        assert family() is not family(vec_size=32)
        assert family.cache_info()["traced"] == 2

    def test_compile_cached_by_signature(self):
        @eva_program(vec_size=16, default_scale=25)
        def family(x):
            return x * x

        compiled = family.compile()
        assert family.compile() is compiled
        assert family.compile(options=CompilerOptions(policy="chet")) is not compiled
        assert compiled.signature == program_signature(family().graph)

    def test_plain_inputs_and_named_outputs(self):
        @eva_program(vec_size=16, default_scale=25, plain=("mask",))
        def family(x, mask):
            return {"masked": x * mask, "shifted": (x << 1) + 0.0}

        program = family()
        graph = program.graph
        assert set(graph.outputs) == {"masked", "shifted"}
        from repro.core.types import ValueType

        assert graph.inputs["x"].value_type is ValueType.CIPHER
        assert graph.inputs["mask"].value_type is ValueType.VECTOR

    def test_tuple_outputs(self):
        @eva_program(vec_size=8, default_scale=25)
        def family(x):
            return x + 1.0, x - 1.0

        assert set(family().graph.outputs) == {"out0", "out1"}

    def test_traced_program_matches_reference(self):
        @eva_program(vec_size=16, default_scale=25)
        def family(x):
            return (x * 2.0 + 1.0) ** 2

        xv = np.linspace(-1, 1, 16)
        result = execute_reference(family().graph, {"x": xv})
        np.testing.assert_allclose(result["out"], (xv * 2 + 1) ** 2, atol=1e-12)

    def test_invalid_definitions_rejected(self):
        with pytest.raises(CompilationError, match="args"):
            @eva_program
            def varargs(*xs):
                return xs[0]

        with pytest.raises(CompilationError, match="not parameters"):
            @eva_program(plain=("nope",))
            def missing(x):
                return x

        @eva_program(vec_size=8)
        def bad_output(x):
            return 42

        with pytest.raises(CompilationError, match="must return"):
            bad_output()

    def test_bare_decorator(self):
        @eva_program
        def family(x):
            return x + 1.0

        assert family.default_vec_size == 4096
        assert family.name == "family"


class TestLegacyCompat:
    def test_executor_one_shot_still_works(self, compiled):
        xv = np.linspace(-1, 1, 32)
        result = Executor(compiled.compilation, MockBackend(error_model="none")).execute(
            {"x": xv}
        )
        np.testing.assert_allclose(result["y"], expected(xv), atol=1e-9)
        assert result.stats.op_count > 0

    def test_executor_matches_split_api(self, compiled, split):
        client, server = split
        xv = np.linspace(-1, 1, 32)
        one_shot = Executor(
            compiled.compilation, MockBackend(error_model="none")
        ).execute({"x": xv})
        split_outputs = client.decrypt_outputs(
            server.evaluate(client.encrypt_inputs({"x": xv}))
        )
        np.testing.assert_allclose(one_shot["y"], split_outputs["y"], atol=1e-12)

    def test_api_reachable_as_attribute(self):
        import repro

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert repro.api.ClientKit is ClientKit

    def test_top_level_imports_warn(self):
        import repro

        with pytest.warns(DeprecationWarning, match="repro.api"):
            _ = repro.Executor

    def test_every_deprecated_name_importable_from_api(self):
        """The deprecation message points at repro.api — it must deliver."""
        import repro
        import repro.api as api

        for name in repro._DEPRECATED_EXPORTS:
            assert hasattr(api, name), name
        # the supported homes stay warning-free
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.api import Executor as _api_executor  # noqa: F401
            from repro.core import Executor as _core_executor  # noqa: F401
