"""Tests for :func:`repro.core.program_signature` (the cache-routing hash)."""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import fields, replace
from pathlib import Path

import pytest

from repro.core import CompilerOptions, Program, program_signature
from repro.core.types import Op, ValueType

#: Golden value of :func:`_golden_program`'s signature with default options.
#: This hash is part of the wire contract: clients and servers that compiled
#: the same source agree on it across processes and machines, so a change
#: here is a breaking change for every serialized artifact and session.
GOLDEN_SIGNATURE = "2fb87ad0acdd994f0ce5d354865f47096e3166c2394bdf73252220a9759c94fa"

_GOLDEN_SNIPPET = """
from repro.core import Program, program_signature
from repro.core.types import Op, ValueType
program = Program({name!r}, vec_size=8)
x = program.input("x", ValueType.CIPHER, scale=30)
x2 = program.make_term(Op.MULTIPLY, [x, x])
program.set_output("out", x2, scale=30)
print(program_signature(program))
"""


def _golden_program(name: str = "golden") -> Program:
    program = Program(name, vec_size=8)
    x = program.input("x", ValueType.CIPHER, scale=30)
    x2 = program.make_term(Op.MULTIPLY, [x, x])
    program.set_output("out", x2, scale=30)
    return program


class TestProgramSignature:
    def test_matches_golden_hash(self):
        assert program_signature(_golden_program()) == GOLDEN_SIGNATURE

    def test_rename_invariance(self):
        """Renaming a program does not change what the compiler produces."""
        assert (
            program_signature(_golden_program("alpha"))
            == program_signature(_golden_program("omega"))
            == GOLDEN_SIGNATURE
        )

    def test_graph_changes_change_the_signature(self):
        program = _golden_program()
        different = Program("golden", vec_size=8)
        x = different.input("x", ValueType.CIPHER, scale=30)
        x2 = different.make_term(Op.MULTIPLY, [x, x])
        x3 = different.make_term(Op.MULTIPLY, [x2, x])
        different.set_output("out", x3, scale=30)
        assert program_signature(program) != program_signature(different)

    @pytest.mark.parametrize(
        "change",
        [
            {"policy": "chet"},
            {"max_rescale_bits": 40.0},
            {"rescale_bits": 25.0},
            {"waterline_bits": 20.0},
            {"security_level": 192},
            {"lower_sum": False},
            {"remove_copies": False},
            {"cleanup": False},
            {"lane_width": 4},
            {"hoist_rotations": False},
            {"bsgs_rotations": "off"},
        ],
        ids=lambda change: next(iter(change)),
    )
    def test_sensitive_to_every_compiler_option(self, change):
        program = _golden_program()
        baseline = program_signature(program, CompilerOptions())
        changed = program_signature(program, replace(CompilerOptions(), **change))
        assert changed != baseline

    def test_every_option_field_is_covered(self):
        """Keep the per-field sensitivity test in sync with CompilerOptions."""
        covered = {
            "policy",
            "max_rescale_bits",
            "rescale_bits",
            "waterline_bits",
            "security_level",
            "lower_sum",
            "remove_copies",
            "cleanup",
            "lane_width",
            "hoist_rotations",
            "bsgs_rotations",
        }
        assert {f.name for f in fields(CompilerOptions)} == covered

    def test_unset_lane_width_keeps_legacy_signature(self):
        """lane_width=None serializes to the pre-lane layout: hashes unchanged."""
        program = _golden_program()
        options = CompilerOptions()
        assert options.lane_width is None
        assert "lane_width" not in options.to_dict()
        assert program_signature(program, options) == GOLDEN_SIGNATURE

    def test_scale_overrides_change_the_signature(self):
        program = _golden_program()
        baseline = program_signature(program)
        assert program_signature(program, input_scales={"x": 40.0}) != baseline
        assert program_signature(program, output_scales={"out": 40.0}) != baseline

    def test_stable_across_processes(self):
        """A fresh interpreter computes the identical hash (no per-process salt)."""
        src_dir = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "random"
        output = subprocess.check_output(
            [sys.executable, "-c", _GOLDEN_SNIPPET.format(name="golden")],
            env=env,
            text=True,
        )
        assert output.strip() == GOLDEN_SIGNATURE
