"""End-to-end tests of compiled EVA programs on the real RNS-CKKS backend.

These are the slowest tests in the suite (real lattice arithmetic in pure
Python); they use small vectors and shallow programs, and confirm that the
compiler's output runs on genuine ciphertexts with the expected accuracy.
"""


import numpy as np
import pytest

from repro.backend import CkksBackend
from repro.core import CompilerOptions, Executor, execute_reference
from repro.frontend import EvaProgram, input_encrypted, output

OPTIONS = CompilerOptions(max_rescale_bits=25)


def compile_and_run(program, inputs, seed=5):
    compiled = program.compile(options=OPTIONS)
    executor = Executor(compiled, CkksBackend(seed=seed))
    return compiled, executor.execute(inputs)


class TestCkksBackendExecution:
    def test_polynomial_with_rotation(self):
        program = EvaProgram("poly", vec_size=256, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            y = x * x * 0.5 + (x << 3) + 1.0
            output("y", y, 25)
        xv = np.linspace(-1, 1, 256)
        compiled, result = compile_and_run(program, {"x": xv})
        reference = execute_reference(program.graph, {"x": xv})
        assert np.max(np.abs(result["y"] - reference["y"])) < 0.05
        assert result.stats.op_count > 0

    def test_cipher_cipher_multiply_and_add(self):
        program = EvaProgram("mix", vec_size=128, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            y = input_encrypted("y", 25)
            output("out", x * y + x, 25)
        rng = np.random.default_rng(0)
        xv, yv = rng.uniform(-1, 1, 128), rng.uniform(-1, 1, 128)
        compiled, result = compile_and_run(program, {"x": xv, "y": yv})
        assert np.max(np.abs(result["out"] - (xv * yv + xv))) < 0.05

    def test_level_metadata_matches_compiler_expectation(self):
        program = EvaProgram("depth", vec_size=64, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("out", (x * x) * (x * x), 25)
        compiled = program.compile(options=OPTIONS)
        context = CkksBackend(seed=1).create_context(compiled.parameters)
        context.generate_keys()
        cipher = context.encrypt(np.linspace(-1, 1, 64), 25)
        assert context.level(cipher) == 0
        assert context.scale_bits(cipher) == pytest.approx(25.0)

    def test_prime_bit_cap_enforced(self):
        program = EvaProgram("big", vec_size=64, default_scale=40)
        with program:
            x = input_encrypted("x", 40)
            output("out", x * x, 40)
        compiled = program.compile(options=CompilerOptions(max_rescale_bits=60))
        executor = Executor(compiled, CkksBackend(seed=2))
        with pytest.raises(Exception):
            executor.execute({"x": np.linspace(-1, 1, 64)})
