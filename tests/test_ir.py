"""Unit tests for the term-graph IR (Program, Term, GraphEditor)."""

import pytest

from repro.core.ir import GraphEditor, Program, Term
from repro.core.types import Op, ValueType
from repro.errors import CompilationError


def build_chain(depth: int = 3) -> Program:
    program = Program("chain", vec_size=8)
    x = program.input("x", ValueType.CIPHER, scale=30)
    node = x
    for _ in range(depth):
        node = program.make_term(Op.MULTIPLY, [node, node])
    program.set_output("out", node, scale=30)
    return program


class TestProgramConstruction:
    def test_vec_size_must_be_power_of_two(self):
        with pytest.raises(CompilationError):
            Program("bad", vec_size=12)

    def test_duplicate_input_names_rejected(self):
        program = Program("p", vec_size=4)
        program.input("x")
        with pytest.raises(CompilationError):
            program.input("x")

    def test_cipher_constants_rejected(self):
        program = Program("p", vec_size=4)
        with pytest.raises(CompilationError):
            program.constant([1.0, 2.0], value_type=ValueType.CIPHER)

    def test_constant_value_types_inferred(self):
        program = Program("p", vec_size=4)
        assert program.constant(1.5).value_type is ValueType.SCALAR
        assert program.constant([1.0, 2.0]).value_type is ValueType.VECTOR

    def test_make_term_infers_cipher(self):
        program = Program("p", vec_size=4)
        x = program.input("x", ValueType.CIPHER)
        c = program.constant(2.0)
        assert program.make_term(Op.MULTIPLY, [x, c]).value_type is ValueType.CIPHER
        assert program.make_term(Op.MULTIPLY, [c, c]).value_type is ValueType.VECTOR

    def test_make_term_rejects_root_opcode(self):
        program = Program("p", vec_size=4)
        with pytest.raises(CompilationError):
            program.make_term(Op.INPUT, [])


class TestGraphQueries:
    def test_terms_topological_order(self):
        program = build_chain(4)
        terms = program.terms()
        positions = {t.id: i for i, t in enumerate(terms)}
        for term in terms:
            for arg in term.args:
                assert positions[arg.id] < positions[term.id]

    def test_uses_map(self):
        program = Program("p", vec_size=4)
        x = program.input("x", ValueType.CIPHER)
        square = program.make_term(Op.MULTIPLY, [x, x])
        program.set_output("out", square)
        uses = program.uses()
        assert len(uses[x.id]) == 2  # both operand slots of the square
        assert uses[square.id] == []

    def test_multiplicative_depth(self):
        assert build_chain(1).multiplicative_depth() == 1
        assert build_chain(5).multiplicative_depth() == 5

    def test_additions_do_not_count_toward_depth(self):
        program = Program("p", vec_size=4)
        x = program.input("x", ValueType.CIPHER)
        node = x
        for _ in range(4):
            node = program.make_term(Op.ADD, [node, x])
        program.set_output("out", node)
        assert program.multiplicative_depth() == 0

    def test_op_counts(self):
        program = build_chain(3)
        counts = program.op_counts()
        assert counts[Op.MULTIPLY] == 3
        assert counts[Op.INPUT] == 1

    def test_len_counts_reachable_terms(self):
        assert len(build_chain(3)) == 4  # input + 3 multiplies

    def test_unreachable_terms_excluded(self):
        program = Program("p", vec_size=4)
        x = program.input("x", ValueType.CIPHER)
        program.make_term(Op.NEGATE, [x])  # dead
        out = program.make_term(Op.MULTIPLY, [x, x])
        program.set_output("out", out)
        ops = [t.op for t in program.terms()]
        assert Op.NEGATE not in ops


class TestStructureValidation:
    def test_missing_outputs_rejected(self):
        program = Program("p", vec_size=4)
        program.input("x", ValueType.CIPHER)
        with pytest.raises(CompilationError):
            program.check_structure()

    def test_frontend_only_rejects_fhe_ops(self):
        program = Program("p", vec_size=4)
        x = program.input("x", ValueType.CIPHER)
        relin = program.make_term(Op.RELINEARIZE, [x])
        program.set_output("out", relin)
        with pytest.raises(CompilationError):
            program.check_structure(frontend_only=True)
        program.check_structure(frontend_only=False)

    def test_arity_checked(self):
        program = Program("p", vec_size=4)
        x = program.input("x", ValueType.CIPHER)
        bad = Term(Op.ADD, [x], ValueType.CIPHER)
        program.set_output("out", bad)
        with pytest.raises(CompilationError):
            program.check_structure()

    def test_rotation_requires_step_attribute(self):
        program = Program("p", vec_size=4)
        x = program.input("x", ValueType.CIPHER)
        rot = Term(Op.ROTATE_LEFT, [x], ValueType.CIPHER)
        program.set_output("out", rot)
        with pytest.raises(CompilationError):
            program.check_structure()

    def test_plain_output_rejected(self):
        program = Program("p", vec_size=4)
        c = program.constant([1.0, 2.0, 3.0, 4.0])
        neg = program.make_term(Op.NEGATE, [c])
        program.outputs["out"] = neg
        with pytest.raises(CompilationError):
            program.check_structure()

    def test_cycle_detection(self):
        program = Program("p", vec_size=4)
        x = program.input("x", ValueType.CIPHER)
        a = program.make_term(Op.NEGATE, [x])
        b = program.make_term(Op.NEGATE, [a])
        a.args[0] = b  # introduce a cycle
        program.set_output("out", b)
        with pytest.raises(CompilationError):
            program.check_structure()


class TestClone:
    def test_clone_is_deep(self):
        program = build_chain(3)
        clone = program.clone()
        assert len(clone) == len(program)
        original_ids = {t.id for t in program.terms()}
        cloned_ids = {t.id for t in clone.terms()}
        assert original_ids.isdisjoint(cloned_ids)

    def test_clone_preserves_outputs_and_scales(self):
        program = build_chain(2)
        program.output_scales["out"] = 25.0
        clone = program.clone()
        assert list(clone.outputs) == ["out"]
        assert clone.output_scales == {"out": 25.0}

    def test_clone_keeps_unused_inputs_declared(self):
        program = Program("p", vec_size=4)
        x = program.input("x", ValueType.CIPHER)
        program.input("unused", ValueType.CIPHER)
        program.set_output("out", program.make_term(Op.MULTIPLY, [x, x]))
        clone = program.clone()
        assert "unused" in clone.inputs


class TestGraphEditor:
    def test_insert_after_rewires_consumers(self):
        program = Program("p", vec_size=4)
        x = program.input("x", ValueType.CIPHER)
        square = program.make_term(Op.MULTIPLY, [x, x])
        consumer = program.make_term(Op.NEGATE, [square])
        program.set_output("out", consumer)
        editor = GraphEditor(program)
        relin = Term(Op.RELINEARIZE, [square], ValueType.CIPHER)
        editor.insert_after(square, relin)
        assert consumer.args[0] is relin
        assert relin.args[0] is square

    def test_insert_after_redirects_outputs(self):
        program = Program("p", vec_size=4)
        x = program.input("x", ValueType.CIPHER)
        square = program.make_term(Op.MULTIPLY, [x, x])
        program.set_output("out", square)
        editor = GraphEditor(program)
        relin = Term(Op.RELINEARIZE, [square], ValueType.CIPHER)
        editor.insert_after(square, relin)
        assert program.outputs["out"] is relin

    def test_replace_term(self):
        program = Program("p", vec_size=4)
        x = program.input("x", ValueType.CIPHER)
        a = program.make_term(Op.NEGATE, [x])
        b = program.make_term(Op.NEGATE, [x])
        consumer = program.make_term(Op.ADD, [a, b])
        program.set_output("out", consumer)
        editor = GraphEditor(program)
        editor.replace_term(b, a)
        assert consumer.args[0] is a and consumer.args[1] is a
