"""Tests for the number theory and NTT layers of the CKKS substrate."""

import numpy as np
import pytest

from repro.ckks.numth import find_primitive_root, generate_ntt_primes, is_prime, mod_inverse
from repro.ckks.ntt import NttContext, get_ntt_context
from repro.errors import ParameterError


class TestPrimality:
    @pytest.mark.parametrize("p", [2, 3, 5, 7, 97, 7919, 104729, 998244353, 2147483647])
    def test_primes(self, p):
        assert is_prime(p)

    @pytest.mark.parametrize("n", [0, 1, 4, 100, 7917, 998244354, 2**30])
    def test_composites(self, n):
        assert not is_prime(n)


class TestNttPrimes:
    def test_generated_primes_are_ntt_friendly(self):
        primes = generate_ntt_primes([30, 30, 25], 2048)
        assert len(primes) == 3
        assert len(set(primes)) == 3
        for bits, prime in zip([30, 30, 25], primes):
            assert is_prime(prime)
            assert prime % (2 * 2048) == 1
            assert abs(np.log2(prime) - bits) < 1.0

    def test_primes_close_to_power_of_two(self):
        (prime,) = generate_ntt_primes([25], 1024)
        assert abs(prime - 2**25) < 64 * 2048

    def test_unsupported_bit_size_rejected(self):
        with pytest.raises(ParameterError):
            generate_ntt_primes([40], 1024)
        with pytest.raises(ParameterError):
            generate_ntt_primes([1], 1024)

    def test_mod_inverse(self):
        prime = generate_ntt_primes([25], 1024)[0]
        for value in (2, 12345, prime - 1):
            assert (value * mod_inverse(value, prime)) % prime == 1

    def test_primitive_root_order(self):
        prime = generate_ntt_primes([25], 1024)[0]
        root = find_primitive_root(2048, prime)
        assert pow(root, 2048, prime) == 1
        assert pow(root, 1024, prime) != 1


class TestNtt:
    @pytest.fixture
    def context(self) -> NttContext:
        prime = generate_ntt_primes([25], 256)[0]
        return get_ntt_context(prime, 256)

    def test_forward_inverse_roundtrip(self, context):
        rng = np.random.default_rng(0)
        coeffs = rng.integers(0, context.prime, context.n, dtype=np.int64)
        np.testing.assert_array_equal(context.inverse(context.forward(coeffs)), coeffs)

    def test_multiplication_matches_schoolbook_negacyclic(self, context):
        rng = np.random.default_rng(1)
        n, q = context.n, context.prime
        a = rng.integers(0, 50, n, dtype=np.int64)
        b = rng.integers(0, 50, n, dtype=np.int64)
        expected = np.zeros(n, dtype=np.int64)
        for i in range(n):
            for j in range(n):
                index = i + j
                value = a[i] * b[j]
                if index >= n:
                    expected[index - n] = (expected[index - n] - value) % q
                else:
                    expected[index] = (expected[index] + value) % q
        np.testing.assert_array_equal(context.multiply(a, b), expected)

    def test_multiplication_by_one(self, context):
        rng = np.random.default_rng(2)
        a = rng.integers(0, context.prime, context.n, dtype=np.int64)
        one = np.zeros(context.n, dtype=np.int64)
        one[0] = 1
        np.testing.assert_array_equal(context.multiply(a, one), a)

    def test_context_caching(self):
        prime = generate_ntt_primes([25], 512)[0]
        assert get_ntt_context(prime, 512) is get_ntt_context(prime, 512)
