"""Tests for the rotation-cost layer: hoisting, BSGS planning, key dedup.

Three optimizations share one correctness obligation — the optimized program
must compute exactly what the direct compilation computes:

* rotation hoisting rewrites ``sum_j c_j * rot_s(y_j)`` into
  ``rot_s(sum_j roll(c_j, s) * y_j)``, one rotation per distinct step;
* BSGS decomposes ``rot(s)`` into ``rot_baby(s % B)(rot_giant(B * (s // B)))``
  so k distinct steps need O(sqrt(k)) Galois keys;
* keygen dedup unions the step sets of several compiled variants so a step
  shared between the solo and lane-lowered forms yields exactly one key.

The property tests here drive random step sets, widths, and coefficients
through the full compiler and compare against the un-optimized compilation
on the exact mock backend; a real-CKKS spot check ties the whole chain to
actual key-switching.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.sobel import build_sobel_program
from repro.backend import CkksBackend, MockBackend
from repro.backend.cost_model import DEFAULT_COST_MODEL
from repro.core import CompilerOptions, Executor, compile_program
from repro.core.analysis.rotations import (
    lane_rotation_profile,
    merge_rotation_steps,
    plan_rotation_steps,
)
from repro.core.types import Op
from repro.errors import CompilationError, ExecutionError
from repro.frontend import EvaProgram, input_encrypted, output

EXACT = dict(error_model="none")

LEGACY = dict(hoist_rotations=False, bsgs_rotations="off")


def rotation_count(compilation) -> int:
    counts = compilation.program.op_counts()
    return counts.get(Op.ROTATE_LEFT, 0) + counts.get(Op.ROTATE_RIGHT, 0)


def random_rotation_sum(rng, vec_size, n_terms, name="randsum"):
    """sum_j c_j * (x << s_j), with repeated steps and occasional bare terms."""
    steps = [int(rng.integers(1, vec_size)) for _ in range(n_terms)]
    coeffs = [float(rng.uniform(-2, 2)) for _ in range(n_terms)]
    program = EvaProgram(name, vec_size=vec_size, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        acc = x * float(rng.uniform(-1, 1))
        for step, coeff in zip(steps, coeffs):
            term = x << step
            if rng.random() < 0.75:
                term = term * coeff
            acc = acc + term
        output("y", acc, 25)
    return program


class TestHoistedEquivalence:
    """Optimized compilation == direct compilation, numerically (mock)."""

    @pytest.mark.parametrize("seed", range(12))
    def test_random_rotation_sums_match_direct(self, seed):
        rng = np.random.default_rng(seed)
        vec_size = 1 << int(rng.integers(4, 8))
        program = random_rotation_sum(rng, vec_size, int(rng.integers(2, 7)))
        optimized = compile_program(program.graph)
        direct = compile_program(
            program.graph, options=CompilerOptions(**LEGACY)
        )
        values = {"x": rng.uniform(-1, 1, vec_size)}
        backend = MockBackend(**EXACT)
        got = Executor(optimized, backend).execute(values)
        want = Executor(direct, backend).execute(values)
        np.testing.assert_allclose(got["y"], want["y"], atol=1e-9)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_lane_lowered_sums_match_direct(self, seed):
        rng = np.random.default_rng(100 + seed)
        vec_size = 1 << int(rng.integers(5, 8))
        lane = 1 << int(rng.integers(2, 5))
        program = random_rotation_sum(
            rng, lane, int(rng.integers(2, 6)), name="lanesum"
        )
        # Steps must stay lane-local for the lowering to apply; the frontend
        # graph carries steps < lane, compiled at the wider vec_size.
        program.graph.vec_size = vec_size
        optimized = compile_program(
            program.graph, options=CompilerOptions(lane_width=lane)
        )
        legacy = compile_program(
            program.graph, options=CompilerOptions(lane_width=lane, **LEGACY)
        )
        values = {"x": rng.uniform(-1, 1, vec_size)}
        backend = MockBackend(**EXACT)
        got = Executor(optimized, backend).execute(values)
        want = Executor(legacy, backend).execute(values)
        np.testing.assert_allclose(got["y"], want["y"], atol=1e-9)
        # The hoisted wrap form needs at most one key per in-lane step plus
        # the shared wrap step; the legacy mask-pair form pays two per step.
        assert len(optimized.rotation_steps) <= len(legacy.rotation_steps)

    def test_hoisting_reduces_rotations_on_shared_source(self):
        # Classic stencil row: five taps of one source, all hoistable.
        program = EvaProgram("stencil", vec_size=64, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            acc = x * 0.1
            for step, coeff in [(1, 0.5), (2, -0.25), (3, 0.125), (4, 1.5)]:
                acc = acc + (x << step) * coeff
            output("y", acc, 25)
        optimized = compile_program(program.graph)
        direct = compile_program(program.graph, options=CompilerOptions(**LEGACY))
        assert rotation_count(optimized) <= rotation_count(direct)
        values = {"x": np.linspace(-1, 1, 64)}
        backend = MockBackend(**EXACT)
        np.testing.assert_allclose(
            Executor(optimized, backend).execute(values)["y"],
            Executor(direct, backend).execute(values)["y"],
            atol=1e-9,
        )


class TestBsgsPlanner:
    def test_dense_step_set_needs_sqrt_keys(self):
        steps = list(range(1, 64))  # 63 distinct steps
        plan = plan_rotation_steps(steps, 128, mode="always")
        assert plan.decomposed
        # B babies + 63//B giants: minimized around sqrt(63) ~ 8.
        assert len(plan.key_steps) <= 16
        for step, (giant, baby) in plan.decompositions.items():
            assert giant + baby == step
            assert giant in plan.key_steps and baby in plan.key_steps

    def test_pure_power_of_two_set_stays_direct(self):
        # {1,2,4,...}: every step is a pure baby or giant of any base, so
        # no decomposition can beat the direct key set.
        steps = [1, 2, 4, 8, 16, 32]
        plan = plan_rotation_steps(steps, 128, mode="auto")
        assert not plan.decomposed
        assert list(plan.key_steps) == steps

    def test_off_mode_is_identity(self):
        plan = plan_rotation_steps([3, 5, 7, 11], 64, mode="off")
        assert not plan.decomposed
        assert list(plan.key_steps) == [3, 5, 7, 11]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="BSGS mode"):
            plan_rotation_steps([1, 3], 64, mode="sometimes")
        with pytest.raises(CompilationError, match="bsgs_rotations"):
            CompilerOptions(bsgs_rotations="sometimes")

    def test_auto_mode_charges_extra_rotations(self):
        # A set whose giants all exist as direct steps pays zero extra
        # rotations; the planner must know that when weighing candidates.
        steps = [8, 9, 10, 16, 17, 18]
        plan = plan_rotation_steps(steps, 64, mode="always")
        if plan.decomposed:
            direct = set(steps) - set(plan.decompositions)
            giants = {g for g, _ in plan.decompositions.values()}
            assert plan.extra_rotations == len(giants - direct)

    @pytest.mark.parametrize("seed", range(10))
    def test_plan_always_covers_every_step(self, seed):
        rng = np.random.default_rng(seed)
        vec_size = 1 << int(rng.integers(4, 10))
        steps = sorted(
            set(int(s) for s in rng.integers(1, vec_size, rng.integers(2, 20)))
        )
        for mode in ("off", "always", "auto"):
            plan = plan_rotation_steps(steps, vec_size, mode=mode)
            keys = set(plan.key_steps)
            for step in steps:
                if step in plan.decompositions:
                    giant, baby = plan.decompositions[step]
                    assert (giant + baby) % vec_size == step
                    assert giant in keys and baby in keys
                else:
                    assert step in keys

    def test_compiled_sobel_uses_decomposed_keys(self):
        program = build_sobel_program(16, vec_size=256)
        optimized = compile_program(program.graph)
        direct = compile_program(program.graph, options=CompilerOptions(**LEGACY))
        assert len(optimized.rotation_steps) < len(direct.rotation_steps)


class TestLaneRotationProfile:
    def test_profile_folds_steps_into_the_lane(self):
        # Steps 3 and 11 coincide mod 8; the wrap step joins when any
        # in-lane step survives.
        assert lane_rotation_profile([3, 11], 8, 64) == [3, 56]

    def test_lane_multiples_vanish(self):
        assert lane_rotation_profile([8, 16], 8, 64) == []


class TestKeyDedup:
    def _variants(self, vec_size=64):
        # Two lane widths of the same program: same masked depth, hence the
        # same encryption parameters, but overlapping-not-equal step sets —
        # exactly the shape a server serving several batch widths produces.
        program = EvaProgram("dedup", vec_size=vec_size, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("y", (x << 3) * 0.5 + (x << 5) * 0.25 + x, 25)
        narrow = compile_program(
            program.graph, options=CompilerOptions(lane_width=8)
        )
        wide = compile_program(
            program.graph, options=CompilerOptions(lane_width=16)
        )
        return narrow, wide

    def test_merge_is_a_set_union(self):
        assert merge_rotation_steps([3, 5], [5, 7], [0, 3]) == [3, 5, 7]

    def test_kit_keygen_covers_the_union_once(self):
        from repro.api import ClientKit

        narrow, wide = self._variants()
        union = merge_rotation_steps(narrow.rotation_steps, wide.rotation_steps)
        kit = ClientKit.for_programs(
            [narrow, wide], backend=MockBackend(**EXACT)
        )
        # The kit holds exactly the union — |A ∪ B| keys, not |A| + |B|.
        assert kit.rotation_steps == union
        assert len(kit.rotation_steps) < len(narrow.rotation_steps) + len(
            wide.rotation_steps
        )

    def test_exported_key_set_size_is_the_union_on_real_ckks(self):
        from repro.api import ClientKit

        program = EvaProgram("dedup-ckks", vec_size=32, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("y", (x << 1) * 0.5 + (x << 3) * 0.25 + x, 25)
        narrow = compile_program(
            program.graph,
            options=CompilerOptions(max_rescale_bits=25, lane_width=4),
        )
        wide = compile_program(
            program.graph,
            options=CompilerOptions(max_rescale_bits=25, lane_width=8),
        )
        union = merge_rotation_steps(narrow.rotation_steps, wide.rotation_steps)
        kit = ClientKit.for_programs([narrow, wide], backend=CkksBackend(seed=3))
        blob = kit.export_evaluation_keys()
        # One Galois key per step in the union: the exported key-set size is
        # the regression guard for keygen dedup.
        assert len(blob["galois_keys"]) == len(union)

    def test_mismatched_parameters_rejected(self):
        from repro.api import ClientKit

        narrow, _ = self._variants()
        program = EvaProgram("deep", vec_size=64, default_scale=30)
        with program:
            x = input_encrypted("x", 30)
            output("y", ((x * x) * x) * x, 30)
        deep = compile_program(program.graph)
        assert (
            deep.parameters.coeff_modulus_bits
            != narrow.parameters.coeff_modulus_bits
        )
        with pytest.raises(ExecutionError, match="different"):
            ClientKit.for_programs([narrow, deep], backend=MockBackend(**EXACT))


class TestRealCkksSpotCheck:
    def test_hoisted_bsgs_compilation_matches_reference(self):
        from repro.core import execute_reference

        program = EvaProgram("ckks-hoist", vec_size=32, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            acc = x * 0.2
            for step, coeff in [(1, 0.5), (2, -0.25), (3, 0.75)]:
                acc = acc + (x << step) * coeff
            output("y", acc, 25)
        compiled = compile_program(
            program.graph, options=CompilerOptions(max_rescale_bits=25)
        )
        rng = np.random.default_rng(31)
        values = {"x": rng.uniform(-1, 1, 32)}
        result = Executor(compiled, CkksBackend(seed=7)).execute(values)
        reference = execute_reference(program.graph, values)
        assert np.max(np.abs(result["y"] - reference["y"])) < 0.05


class TestWidthPicker:
    def _lane_program(self):
        program = EvaProgram("picker", vec_size=64, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("y", (x << 1) * 0.5 + x, 25)
        return compile_program(program.graph)

    def test_cost_model_ranking_prefers_capacity(self):
        from repro.serving.artifacts import LaneWidthPolicy

        policy = LaneWidthPolicy(top_widths=3)
        compilation = self._lane_program()
        # All requests are width 4: a width-4 lane packs 16 per ciphertext,
        # wider lanes waste slots — the model must prefer the snug width.
        ranked = policy.choose_widths(compilation, {4: 40, 16: 2})
        assert ranked and ranked[0][0] == 4
        assert all(score > 0 for _width, score in ranked)

    def test_frequency_fallback_matches_histogram_order(self):
        from repro.serving.artifacts import LaneWidthPolicy

        policy = LaneWidthPolicy(top_widths=2, use_cost_model=False)
        compilation = self._lane_program()
        ranked = policy.choose_widths(compilation, {8: 3, 16: 9, 32: 1})
        assert [width for width, _score in ranked] == [16, 8]

    def test_invalid_widths_filtered(self):
        from repro.serving.artifacts import LaneWidthPolicy

        policy = LaneWidthPolicy()
        compilation = self._lane_program()
        # 64 is the full vector, 3 does not divide it, 0 is degenerate.
        assert policy.choose_widths(compilation, {64: 5, 3: 5, 0: 5}) == []


class TestServingRotationCounters:
    def test_counters_track_the_rotation_tax(self):
        from repro.api import ClientKit, CompiledProgram
        from repro.serving import EvaServer
        from repro.serving.telemetry import render_prometheus

        program = EvaProgram("rotcount", vec_size=64, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            output("y", (x << 1) * 0.5 + x, 25)
        backend = MockBackend(**EXACT)
        with EvaServer(backend=backend, workers=1, batch_window=0.0) as server:
            server.register("rotcount", program)
            compiled = compile_program(program.graph)
            per_eval = sum(
                compiled.program.op_counts().get(op, 0)
                for op in (Op.ROTATE_LEFT, Op.ROTATE_RIGHT)
            )
            assert per_eval > 0
            for _ in range(3):
                server.request(
                    "rotcount", {"x": np.ones(64)}, client_id="carol"
                )
            registry = server.telemetry.registry
            rotations = registry.counter_value(
                "serving.rotations", program="rotcount", client="carol"
            )
            keyswitches = registry.counter_value(
                "serving.keyswitch", program="rotcount", client="carol"
            )
            # Three solo evaluations, each paying the compiled graph's
            # rotation count; key switches include relinearizations too.
            assert rotations == 3 * per_eval
            assert keyswitches >= rotations

            # A session registration accrues the modeled key upload bytes.
            kit = ClientKit(
                CompiledProgram.compile(program, options=CompilerOptions()),
                backend=backend,
                client_id="carol",
            )
            server.create_session(
                "rotcount", "carol", kit.evaluation_context()
            )
            key_bytes = registry.counter_value(
                "serving.galois.keys_bytes", program="rotcount", client="carol"
            )
            expected = len(
                compiled.parameters.rotation_steps
            ) * DEFAULT_COST_MODEL.galois_key_bytes(
                compiled.parameters.poly_modulus_degree,
                max(len(compiled.parameters.coeff_modulus_bits), 1),
            )
            assert key_bytes == expected

            exposition = render_prometheus(server.metrics_snapshot())
            assert 'serving_rotations_total{' in exposition
            assert 'serving_keyswitch_total{' in exposition
            assert 'serving_galois_keys_bytes_total{' in exposition


class TestCostModelTerms:
    def test_galois_key_bytes_scale_with_degree_and_levels(self):
        small = DEFAULT_COST_MODEL.galois_key_bytes(1024, 2)
        assert small == 2 * 2 * 3 * 1024 * 8
        assert DEFAULT_COST_MODEL.galois_key_bytes(2048, 2) == 2 * small
        assert DEFAULT_COST_MODEL.galois_key_bytes(1024, 3) == 2 * 3 * 4 * 1024 * 8

    def test_rotation_plan_seconds_trades_keys_for_rotations(self):
        # Fewer keys is cheaper when extra rotations stay moderate...
        few = DEFAULT_COST_MODEL.rotation_plan_seconds(6, 2, 4096, 3)
        many = DEFAULT_COST_MODEL.rotation_plan_seconds(40, 0, 4096, 3)
        assert few < many
        # ...but a decomposition that adds rotations to every evaluation
        # must pay for them (monotone in extra_rotations).
        assert DEFAULT_COST_MODEL.rotation_plan_seconds(
            6, 8, 4096, 3
        ) > DEFAULT_COST_MODEL.rotation_plan_seconds(6, 2, 4096, 3)

    def test_program_seconds_orders_by_work(self):
        shallow = self._poly(1)
        deep = self._poly(3)
        assert DEFAULT_COST_MODEL.program_seconds(
            deep.program, 4096, 3
        ) > DEFAULT_COST_MODEL.program_seconds(shallow.program, 4096, 3)

    @staticmethod
    def _poly(depth):
        program = EvaProgram(f"poly{depth}", vec_size=16, default_scale=25)
        with program:
            x = input_encrypted("x", 25)
            acc = x
            for _ in range(depth):
                acc = acc * x
            output("y", acc, 25)
        return compile_program(program.graph)
