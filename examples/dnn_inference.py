"""Homomorphic neural-network inference: CHET re-targeted onto EVA (Section 7.2).

The example trains a small LeNet-style network on a synthetic dataset, lowers
it through the homomorphic tensor kernels into an EVA program, compiles it
under both the EVA policy and the CHET baseline policy, and compares:

* the selected encryption parameters (Table 6),
* the modeled 56-thread latency (Table 5 / Figure 7), and
* the encrypted vs unencrypted predictions (Table 4).

Run with::

    python examples/dnn_inference.py
"""

import numpy as np

from repro.backend import MockBackend
from repro.core import CompilerOptions, simulate_schedule
from repro.nn import (
    DnnCompiler,
    EncryptedInferenceSession,
    ScaleConfig,
    build_lenet_small,
    synthetic_image_dataset,
    train_readout,
)
from repro.nn.training import accuracy


def main() -> None:
    # -- data and model ----------------------------------------------------------
    network = build_lenet_small()
    dataset = synthetic_image_dataset(
        num_classes=10, image_shape=network.input_shape, train_per_class=15, test_per_class=3, seed=0
    )
    train_readout(network, dataset, epochs=500, learning_rate=1.0)
    plain_accuracy = accuracy(network, dataset.test_images, dataset.test_labels)
    print(f"{network.name}: unencrypted test accuracy {100 * plain_accuracy:.1f}%\n")

    scales = ScaleConfig(cipher=25, vector=15, scalar=10, output=30)
    compiled = {}
    for policy in ("chet", "eva"):
        compiled[policy] = DnnCompiler(scales, CompilerOptions(policy=policy)).compile(network)
        params = compiled[policy].compilation.parameters.summary()
        discipline = "dag" if policy == "eva" else "kernel"
        latency = simulate_schedule(
            compiled[policy].compilation, threads=56, discipline=discipline
        ).makespan_seconds
        print(
            f"{policy.upper():>4}: logN={params['log_n']} logQ={params['log_q']} r={params['r']} "
            f"| modeled latency on 56 threads: {latency:.3f}s"
        )

    # -- encrypted inference -------------------------------------------------------
    # One session = one client/server pair: the client keeps the keys, the
    # server evaluates ciphertexts only, and keygen is paid once for all images.
    session = EncryptedInferenceSession(compiled["eva"], backend=MockBackend(seed=5))
    matches, correct = 0, 0
    samples = 10
    print(f"\nrunning {samples} encrypted inferences (EVA policy, mock CKKS backend)")
    for image, label in zip(dataset.test_images[:samples], dataset.test_labels[:samples]):
        logits = session.infer(image)
        encrypted_prediction = int(np.argmax(logits))
        matches += int(encrypted_prediction == network.predict(image))
        correct += int(encrypted_prediction == int(label))
    print(f"encrypted predictions agreeing with plaintext: {matches}/{samples}")
    print(f"encrypted accuracy on these samples:           {correct}/{samples}")


if __name__ == "__main__":
    main()
