"""Statistical machine learning and arithmetic on encrypted data.

Reproduces the remaining Table 8 applications: 3-D path length (the secure
fitness-tracking kernel), linear regression, polynomial regression, and
multivariate regression, each evaluated on encrypted inputs and checked
against the plaintext reference.

Run with::

    python examples/statistical_ml.py
"""

import time

import numpy as np

from repro.api import ClientKit, CompiledProgram, ServerRuntime
from repro.apps import (
    build_linear_regression_program,
    build_multivariate_regression_program,
    build_path_length_program,
    build_polynomial_regression_program,
    random_path,
    reference_linear_regression,
    reference_multivariate_regression,
    reference_path_length,
    reference_polynomial_regression,
)
from repro.backend import MockBackend


def run(name, program, inputs, reference):
    compiled = CompiledProgram.compile(program)
    client = ClientKit(compiled, backend=MockBackend(seed=11))
    server = ServerRuntime(compiled, backend=client.backend)
    server.attach_client(client.client_id, client.evaluation_context())
    start = time.perf_counter()
    outputs = client.decrypt_outputs(server.evaluate(client.encrypt_inputs(inputs)))
    elapsed = time.perf_counter() - start
    prediction = outputs[next(iter(outputs))]
    reference = np.atleast_1d(np.asarray(reference, dtype=np.float64))
    error = np.max(np.abs(prediction[: reference.size] - reference))
    print(f"{name:>26}: vec_size={program.vec_size:5d} | {elapsed:5.3f}s | max error {error:.2e}")


def main() -> None:
    rng = np.random.default_rng(1)

    path = random_path(1024, seed=4)
    run(
        "3-D path length",
        build_path_length_program(num_points=1024),
        path,
        reference_path_length(path["x"], path["y"], path["z"]),
    )

    x = rng.uniform(-1, 1, 2048)
    run(
        "linear regression",
        build_linear_regression_program(vec_size=2048),
        {"x": x},
        reference_linear_regression(x),
    )

    xp = rng.uniform(-1, 1, 4096)
    run(
        "polynomial regression",
        build_polynomial_regression_program(vec_size=4096),
        {"x": xp},
        reference_polynomial_regression(xp),
    )

    features = {f"x{i}": rng.uniform(-1, 1, 2048) for i in range(5)}
    run(
        "multivariate regression",
        build_multivariate_regression_program(vec_size=2048),
        features,
        reference_multivariate_regression(features),
    )


if __name__ == "__main__":
    main()
