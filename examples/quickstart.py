"""Quickstart: the three-artifact flow — compile, encrypt, evaluate, decrypt.

This example mirrors the deployment model of the paper: the *client* owns the
keys and the data, the *server* owns the compiled program and evaluates on
ciphertexts only.  The workflow is:

1. write the program — here with the ``@eva_program`` decorator, which traces
   a plain Python function into a family of programs parameterized by
   ``vec_size`` (the classic ``with program:`` block still works too);
2. compile it into a ``CompiledProgram`` artifact (the EVA compiler inserts
   the FHE-specific operations, validates the result, and selects encryption
   parameters and rotation keys);
3. split the execution across the trust boundary: a ``ClientKit`` generates
   keys and encrypts, a ``ServerRuntime`` — which never receives the secret
   key — evaluates the ciphertext bundle, and the client decrypts.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.api import ClientKit, ServerRuntime, eva_program
from repro.backend import MockBackend


# -- 1. write the program as a traced function --------------------------------
@eva_program(vec_size=1024, default_scale=30)
def kernel(x, y):
    # An arbitrary arithmetic kernel: note the rotation (x << 1), the free
    # mixing of ciphertext and plaintext operands, and plaintext division.
    return (x * y + (x << 1)) ** 2 + x / 2 + 1.0


def main() -> None:
    # -- 2. compile into the shared artifact ----------------------------------
    compiled = kernel.compile()
    print("compiled program:")
    for key, value in compiled.summary().items():
        print(f"  {key:>18}: {value}")
    print(f"  coeff modulus bits: {compiled.parameters.coeff_modulus_bits}")
    print(f"  rotation steps    : {compiled.rotation_steps}")

    # -- 3. client: keygen + encrypt ------------------------------------------
    rng = np.random.default_rng(0)
    inputs = {"x": rng.uniform(-1, 1, 1024), "y": rng.uniform(-1, 1, 1024)}

    client = ClientKit(compiled, backend=MockBackend(seed=1))
    bundle = client.encrypt_inputs(inputs)

    # -- 4. server: blind evaluation ------------------------------------------
    # The server receives only the compiled program, the client's *evaluation*
    # keys, and ciphertexts.  Handing it a context holding a secret key is an
    # error; decryption on its context raises.
    server = ServerRuntime(compiled, backend=client.backend)
    server.attach_client(client.client_id, client.evaluation_context())
    encrypted = server.evaluate(bundle)

    # -- 5. client: decrypt and check vs the plaintext reference --------------
    outputs = client.decrypt_outputs(encrypted)
    reference = compiled.execute_reference(inputs)

    error = np.max(np.abs(outputs["out"] - reference["out"]))
    print(f"\nmax |encrypted - plaintext| = {error:.2e}")
    server_context = server.client_context(client.client_id)
    print(
        f"server evaluated {server_context.op_count} homomorphic operations "
        f"in {encrypted.evaluate_seconds:.3f}s without the secret key "
        f"(has_secret_key={server_context.has_secret_key})"
    )


if __name__ == "__main__":
    main()
