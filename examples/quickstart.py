"""Quickstart: write, compile, and run your first EVA program.

This example mirrors the workflow of the paper (Sections 3-6):

1. write a program in PyEVA (no FHE-specific operations — no rescaling, no
   modulus switching, no relinearization);
2. compile it: the EVA compiler inserts the FHE-specific operations, validates
   the result, and selects encryption parameters and rotation keys;
3. execute it on encrypted data and compare against the plaintext reference.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro.backend import MockBackend
from repro.core import CompilerOptions, Executor, execute_reference
from repro.frontend import EvaProgram, input_encrypted, output


def main() -> None:
    # -- 1. write the program -------------------------------------------------
    program = EvaProgram("quickstart", vec_size=1024, default_scale=30)
    with program:
        x = input_encrypted("x", scale=30)
        y = input_encrypted("y", scale=30)
        # An arbitrary arithmetic kernel: note the rotation (x << 1) and the
        # free mixing of ciphertext and plaintext operands.
        result = (x * y + (x << 1)) ** 2 + 0.5 * x + 1.0
        output("result", result, scale=30)

    # -- 2. compile ------------------------------------------------------------
    compiled = program.compile(options=CompilerOptions(policy="eva"))
    print("compiled program:")
    for key, value in compiled.summary().items():
        print(f"  {key:>18}: {value}")
    print(f"  coeff modulus bits: {compiled.parameters.coeff_modulus_bits}")
    print(f"  rotation steps    : {compiled.rotation_steps}")

    # -- 3. execute on encrypted data ------------------------------------------
    rng = np.random.default_rng(0)
    inputs = {"x": rng.uniform(-1, 1, 1024), "y": rng.uniform(-1, 1, 1024)}

    executor = Executor(compiled, backend=MockBackend(seed=1))
    encrypted_result = executor.execute(inputs)
    reference = execute_reference(program.graph, inputs)

    error = np.max(np.abs(encrypted_result["result"] - reference["result"]))
    print(f"\nmax |encrypted - plaintext| = {error:.2e}")
    print(f"executed {encrypted_result.stats.op_count} homomorphic operations "
          f"in {encrypted_result.stats.wall_seconds:.3f}s "
          f"(peak live ciphertexts: {encrypted_result.stats.peak_live_ciphertexts})")


if __name__ == "__main__":
    main()
