"""SLO-aware serving: tight deadlines next to relaxed batch traffic.

Two encrypted clients share a 2-shard cluster (see ``docs/architecture.md``):

* ``trader`` submits a paced stream of **tight** requests with a real
  ``deadline_ms``.  The engine gives them a zero linger budget (solo
  execution, no waiting for batch lane-mates) and rejects any request whose
  modeled queue wait + execution cannot meet the deadline — up front, with a
  typed :class:`~repro.errors.DeadlineInfeasibleError` carrying a
  ``retry_after`` hint, instead of letting the client discover the miss
  after the deadline has already passed.

* ``analytics`` floods **relaxed** requests with no deadline.  Relaxed
  traffic always lingers the full batch window, so it keeps its slot-batch
  amortization even while the tight stream cuts through.

Both clients hold their own keys: the cluster sees only evaluation keys and
ciphertexts, and the SLO fields ride the request envelope identically to
the plaintext path.  At the end the example prints the ``serving.slo.*``
outcome counters from the cluster-wide metrics snapshot.

Run with::

    PYTHONPATH=src python examples/slo_serving.py
"""

import threading
import time

import numpy as np

from repro.api import ClientKit, CompiledProgram, execute_reference
from repro.backend import MockBackend
from repro.errors import DeadlineInfeasibleError
from repro.frontend import EvaProgram, input_encrypted, output
from repro.serving import BackendSpec, EvaCluster

#: Simulated per-op hardware latency: makes deadlines meaningful on any host.
OP_LATENCY = 0.002
BATCH_WINDOW = 0.05
TIGHT_DEADLINE_MS = 400.0
TIGHT_REQUESTS = 10
RELAXED_REQUESTS = 24


def build_program() -> EvaProgram:
    program = EvaProgram("poly", vec_size=64, default_scale=25)
    with program:
        x = input_encrypted("x", 25)
        output("y", (x * x + x * 0.5) * (x * x - 1.0) + x, 25)
    return program


def make_kit(program, client_id: str) -> ClientKit:
    return ClientKit(
        CompiledProgram.compile(program.graph),
        backend=MockBackend(error_model="none"),
        client_id=client_id,
    )


def slo_counters(cluster) -> dict:
    """Aggregate serving.slo.* counters from the cluster snapshot."""
    totals = {}
    for counter in cluster.metrics_snapshot()["counters"]:
        name = counter["name"]
        labels = counter.get("labels", {})
        if name.startswith("serving.slo.") and "shard" not in labels:
            key = (name, labels.get("slo_class", "?"))
            totals[key] = totals.get(key, 0) + int(counter["value"])
    return totals


def main() -> None:
    program = build_program()
    inputs = {"x": [0.1, 0.4, -0.3, 0.9]}
    expected = execute_reference(program.graph, inputs)["y"][:4]

    cluster = EvaCluster(
        shards=2,
        backend=BackendSpec("mock-exact", seed=11, op_latency=OP_LATENCY),
        batch_window=BATCH_WINDOW,
        workers=2,
    )
    cluster.register("poly", program)
    cluster.start()
    try:
        trader = make_kit(program, "trader")
        analytics = make_kit(program, "analytics")
        for kit in (trader, analytics):
            cluster.create_session("poly", kit)
            # Warm the path end to end (compile + keygen are one-time costs).
            outputs = cluster.request_encrypted("poly", kit, inputs)
            np.testing.assert_allclose(outputs["y"][:4], expected, atol=1e-6)

        # The relaxed flood: a loose deadline (outcomes still counted), full
        # batch-window amortization.
        def relaxed_flood() -> None:
            for _ in range(RELAXED_REQUESTS):
                cluster.request_encrypted(
                    "poly",
                    analytics,
                    inputs,
                    deadline_ms=5000.0,
                    slo_class="relaxed",
                )

        flood = threading.Thread(target=relaxed_flood)
        flood.start()

        # The tight stream: paced, deadline-carrying, never lingers.
        latencies, rejected = [], 0
        for _ in range(TIGHT_REQUESTS):
            started = time.perf_counter()
            try:
                outputs = cluster.request_encrypted(
                    "poly",
                    trader,
                    inputs,
                    deadline_ms=TIGHT_DEADLINE_MS,
                    slo_class="tight",
                )
            except DeadlineInfeasibleError as error:
                rejected += 1
                print(f"tight request rejected up front, retry in {error.retry_after:.3f}s")
            else:
                np.testing.assert_allclose(outputs["y"][:4], expected, atol=1e-6)
                latencies.append(time.perf_counter() - started)
            time.sleep(0.02)
        flood.join()

        print(f"\ntight: {len(latencies)} served, {rejected} rejected up front")
        if latencies:
            print(
                f"tight p95: {np.percentile(latencies, 95) * 1e3:.1f}ms "
                f"(deadline {TIGHT_DEADLINE_MS:g}ms)"
            )
        print("\nserving.slo.* outcome counters (cluster-wide aggregate):")
        for (name, slo_class), value in sorted(slo_counters(cluster).items()):
            print(f"  {name:26s} slo_class={slo_class:9s} {value}")
    finally:
        cluster.close()


if __name__ == "__main__":
    main()
