"""Image processing on encrypted images: Sobel filtering and Harris corners.

Reproduces the applications of Section 8.3 (Table 8): both programs are a few
dozen lines of PyEVA, are compiled once, and then run on an encrypted image.
The decrypted results are compared against the NumPy reference.

Run with::

    python examples/image_processing.py [image_size]
"""

import sys
import time

import numpy as np

from repro.api import ClientKit, CompiledProgram, ServerRuntime
from repro.apps import (
    build_harris_program,
    build_sobel_program,
    random_image,
    reference_harris,
    reference_sobel,
)
from repro.backend import MockBackend


def run(name, program, inputs, reference):
    compiled = CompiledProgram.compile(program)
    summary = compiled.summary()
    # Client encrypts, the server evaluates blindly, the client decrypts.
    client = ClientKit(compiled, backend=MockBackend(seed=7))
    server = ServerRuntime(compiled, backend=client.backend)
    server.attach_client(client.client_id, client.evaluation_context())
    start = time.perf_counter()
    outputs = client.decrypt_outputs(server.evaluate(client.encrypt_inputs(inputs)))
    elapsed = time.perf_counter() - start
    output_name = next(iter(outputs))
    error = np.max(np.abs(outputs[output_name] - reference.reshape(-1)))
    print(
        f"{name:>24}: logN=2^{summary['log_n']} logQ={summary['log_q']} r={summary['r']} "
        f"| {elapsed:5.2f}s on 1 thread | max error {error:.2e}"
    )


def main() -> None:
    image_size = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    image = random_image(image_size, seed=3)
    print(f"processing an encrypted {image_size}x{image_size} image\n")

    run(
        "Sobel filter detection",
        build_sobel_program(image_size=image_size),
        {"image": image.reshape(-1)},
        reference_sobel(image),
    )
    run(
        "Harris corner detection",
        build_harris_program(image_size=image_size),
        {"image": image.reshape(-1)},
        reference_harris(image),
    )


if __name__ == "__main__":
    main()
